// Package aead provides the authenticated transport encryption used to
// carry STS authentication responses: AES-128-CTR encryption with an
// HMAC-SHA-256 tag in encrypt-then-MAC composition, mirroring the
// tiny-aes + bear-ssl HMAC primitive stack of the paper (§V-A).
//
// The STS protocol (Algorithm 1) sends Resp = encrypt(KS, dsign); the
// scheme here is the concrete `encrypt`. A pluggable Scheme interface
// keeps the protocol engine independent of the composition choice.
package aead

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
)

// Scheme is an authenticated-encryption scheme with explicit keys for
// the encryption and authentication halves.
type Scheme interface {
	// Seal encrypts and authenticates plaintext, returning
	// nonce ‖ ciphertext ‖ tag.
	Seal(encKey, macKey, plaintext, aad []byte) ([]byte, error)
	// Open verifies and decrypts a Seal output.
	Open(encKey, macKey, sealed, aad []byte) ([]byte, error)
	// Overhead is the ciphertext expansion in bytes (nonce + tag).
	Overhead() int
	// Name identifies the scheme in logs and experiment output.
	Name() string
}

const (
	// NonceSize is the CTR nonce length prepended to ciphertexts.
	NonceSize = aes.BlockSize
	// TagSize is the truncated HMAC-SHA-256 tag length. 16 bytes
	// keeps the 128-bit security level of §V-A.
	TagSize = 16
)

// ErrAuth is returned when tag verification fails.
var ErrAuth = errors.New("aead: message authentication failed")

// CTRThenHMAC is the default encrypt-then-MAC scheme. The zero value
// uses crypto/rand for nonces; tests may set Rand for determinism.
type CTRThenHMAC struct {
	// Rand supplies nonces; nil selects crypto/rand.Reader.
	Rand io.Reader
}

// Name implements Scheme.
func (s *CTRThenHMAC) Name() string { return "AES-128-CTR+HMAC-SHA256" }

// Overhead implements Scheme.
func (s *CTRThenHMAC) Overhead() int { return NonceSize + TagSize }

// Seal implements Scheme.
func (s *CTRThenHMAC) Seal(encKey, macKey, plaintext, aad []byte) ([]byte, error) {
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, fmt.Errorf("aead: %w", err)
	}
	rng := s.Rand
	if rng == nil {
		rng = rand.Reader
	}
	out := make([]byte, NonceSize+len(plaintext)+TagSize)
	nonce := out[:NonceSize]
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, fmt.Errorf("aead: nonce: %w", err)
	}
	ct := out[NonceSize : NonceSize+len(plaintext)]
	cipher.NewCTR(block, nonce).XORKeyStream(ct, plaintext)

	tag := s.tag(macKey, nonce, ct, aad)
	copy(out[NonceSize+len(plaintext):], tag)
	return out, nil
}

// Open implements Scheme.
func (s *CTRThenHMAC) Open(encKey, macKey, sealed, aad []byte) ([]byte, error) {
	if len(sealed) < NonceSize+TagSize {
		return nil, errors.New("aead: sealed message too short")
	}
	nonce := sealed[:NonceSize]
	ct := sealed[NonceSize : len(sealed)-TagSize]
	tag := sealed[len(sealed)-TagSize:]

	want := s.tag(macKey, nonce, ct, aad)
	if subtle.ConstantTimeCompare(want, tag) != 1 {
		return nil, ErrAuth
	}
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, fmt.Errorf("aead: %w", err)
	}
	pt := make([]byte, len(ct))
	cipher.NewCTR(block, nonce).XORKeyStream(pt, ct)
	return pt, nil
}

// tag computes the truncated encrypt-then-MAC tag over
// nonce ‖ ciphertext ‖ aad ‖ len(aad).
func (s *CTRThenHMAC) tag(macKey, nonce, ct, aad []byte) []byte {
	m := hmac.New(sha256.New, macKey)
	m.Write(nonce)
	m.Write(ct)
	m.Write(aad)
	var lenBuf [8]byte
	putUint64(lenBuf[:], uint64(len(aad)))
	m.Write(lenBuf[:])
	return m.Sum(nil)[:TagSize]
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// Default is the scheme used by the protocol engine.
var Default Scheme = &CTRThenHMAC{}
