package aead

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func testKeys() (enc, mac []byte) {
	enc = make([]byte, 16)
	mac = make([]byte, 32)
	for i := range enc {
		enc[i] = byte(i)
	}
	for i := range mac {
		mac[i] = byte(0x80 + i)
	}
	return
}

func TestSealOpenRoundTrip(t *testing.T) {
	s := &CTRThenHMAC{Rand: newDetRand(1)}
	enc, mac := testKeys()
	for _, size := range []int{0, 1, 15, 16, 17, 64, 1000} {
		pt := make([]byte, size)
		for i := range pt {
			pt[i] = byte(i * 7)
		}
		sealed, err := s.Seal(enc, mac, pt, []byte("aad"))
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(sealed) != size+s.Overhead() {
			t.Errorf("size %d: sealed length %d, want %d", size, len(sealed), size+s.Overhead())
		}
		got, err := s.Open(enc, mac, sealed, []byte("aad"))
		if err != nil {
			t.Fatalf("size %d: open: %v", size, err)
		}
		if !bytes.Equal(got, pt) {
			t.Errorf("size %d: round trip mismatch", size)
		}
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	s := &CTRThenHMAC{Rand: newDetRand(2)}
	enc, mac := testKeys()
	pt := []byte("the sts signature payload")
	sealed, err := s.Seal(enc, mac, pt, []byte("context"))
	if err != nil {
		t.Fatal(err)
	}

	// Flip each region: nonce, ciphertext, tag.
	for _, idx := range []int{0, NonceSize, len(sealed) - 1} {
		tampered := append([]byte{}, sealed...)
		tampered[idx] ^= 0x01
		if _, err := s.Open(enc, mac, tampered, []byte("context")); err == nil {
			t.Errorf("tampering at byte %d accepted", idx)
		}
	}
	// Wrong AAD.
	if _, err := s.Open(enc, mac, sealed, []byte("other")); err == nil {
		t.Error("wrong AAD accepted")
	}
	// Wrong MAC key.
	otherMac := make([]byte, 32)
	if _, err := s.Open(enc, otherMac, sealed, []byte("context")); err == nil {
		t.Error("wrong MAC key accepted")
	}
	// Truncated.
	if _, err := s.Open(enc, mac, sealed[:NonceSize+TagSize-1], []byte("context")); err == nil {
		t.Error("truncated message accepted")
	}
	// Wrong decryption key must still authenticate (EtM property: the
	// tag covers ciphertext, not plaintext), but yield garbage.
	otherEnc := make([]byte, 16)
	got, err := s.Open(otherEnc, mac, sealed, []byte("context"))
	if err != nil {
		t.Fatalf("EtM open with wrong enc key must pass auth: %v", err)
	}
	if bytes.Equal(got, pt) {
		t.Error("wrong enc key decrypted to original plaintext")
	}
}

func TestNonceUniqueness(t *testing.T) {
	s := &CTRThenHMAC{} // crypto/rand path
	enc, mac := testKeys()
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		sealed, err := s.Seal(enc, mac, []byte("m"), nil)
		if err != nil {
			t.Fatal(err)
		}
		n := string(sealed[:NonceSize])
		if seen[n] {
			t.Fatal("nonce repeated")
		}
		seen[n] = true
	}
}

func TestKeySizeErrors(t *testing.T) {
	s := &CTRThenHMAC{Rand: newDetRand(3)}
	_, mac := testKeys()
	if _, err := s.Seal(make([]byte, 5), mac, []byte("x"), nil); err == nil {
		t.Error("bad enc key size accepted in Seal")
	}
	enc, _ := testKeys()
	sealed, _ := s.Seal(enc, mac, []byte("x"), nil)
	// Open checks the tag before the cipher; corrupt key size should
	// still error out — tag passes, cipher construction fails.
	if _, err := s.Open(make([]byte, 5), mac, sealed, nil); err == nil {
		t.Error("bad enc key size accepted in Open")
	}
}

func TestSchemeMetadata(t *testing.T) {
	s := &CTRThenHMAC{}
	if s.Name() == "" {
		t.Error("empty scheme name")
	}
	if s.Overhead() != NonceSize+TagSize {
		t.Errorf("Overhead = %d", s.Overhead())
	}
	var _ Scheme = s // interface conformance
	if Default == nil {
		t.Error("Default scheme is nil")
	}
}

// TestQuickRoundTrip property-tests seal/open across random plaintexts
// and AADs.
func TestQuickRoundTrip(t *testing.T) {
	s := &CTRThenHMAC{Rand: newDetRand(4)}
	enc, mac := testKeys()
	f := func(pt, aad []byte) bool {
		sealed, err := s.Seal(enc, mac, pt, aad)
		if err != nil {
			return false
		}
		got, err := s.Open(enc, mac, sealed, aad)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}
