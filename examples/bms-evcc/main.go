// BMS ↔ EVCC: the paper's automotive prototype scenario (§V-C). A
// battery management system and an electric-vehicle charging
// controller — both modelled as S32K144 microcontrollers — establish a
// secure session over CAN-FD with ISO-TP fragmentation, once with the
// proposed STS dynamic KD and once with the static ECDSA baseline,
// then exchange charging telemetry.
package main

import (
	"fmt"
	"log"

	"repro/ecqvsts"
	"repro/internal/hwmodel"
	"repro/internal/prototype"
)

func main() {
	log.SetFlags(0)

	// --- Fig. 7 timing comparison on the modelled hardware.
	model, err := hwmodel.New()
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := prototype.Compare(model, "S32K144")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BMS ↔ EVCC session establishment over CAN-FD (S32K144 pair):")
	for _, tl := range []*prototype.Timeline{cmp.STS, cmp.SECDSA} {
		fmt.Printf("  %-8s processing %6.3f s + wire %5.3f ms = total %6.3f s (%d CAN-FD frames)\n",
			tl.Protocol, tl.Processing.Seconds(),
			float64(tl.Wire.Microseconds())/1000, tl.Total.Seconds(), tl.BusStats.Frames)
	}
	fmt.Printf("  STS costs %.1f %% more than static ECDSA (paper: 21.67 %%) and adds forward secrecy\n\n",
		cmp.IncreasePct)

	// --- Live session: actual cryptography between the two ECUs.
	authority, err := ecqvsts.NewAuthority()
	if err != nil {
		log.Fatal(err)
	}
	bms, err := authority.Enroll("bms-controller")
	if err != nil {
		log.Fatal(err)
	}
	evcc, err := authority.Enroll("evcc-controller")
	if err != nil {
		log.Fatal(err)
	}
	session, err := ecqvsts.Establish(ecqvsts.STS, evcc, bms)
	if err != nil {
		log.Fatal(err)
	}

	// Charging loop telemetry, protected under the fresh session key.
	frames := []string{
		"charge request: 11 kW, target SoC 80 %",
		"cell block 3: 3.97 V, 24.1 C",
		"charge current ramp: 16 A -> 28 A",
		"contactor state: closed, isolation ok",
	}
	fmt.Println("protected charging telemetry:")
	for i, f := range frames {
		aad := []byte{byte(i)}
		ct, err := session.Seal([]byte(f), aad)
		if err != nil {
			log.Fatal(err)
		}
		pt, err := session.Open(ct, aad)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  frame %d: %3d B sealed -> ok: %q\n", i, len(ct), pt)
	}

	// A new charging session (e.g. next plug-in) re-keys: the
	// certificate session persists, the communication session key does
	// not.
	if _, err := ecqvsts.Establish(ecqvsts.STS, evcc, bms); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nre-keyed for the next charging session — same certificates, fresh key")
}
