// Threat analysis: run the paper's §V-D security evaluation as live
// attacker simulations and print the resulting Table III verdicts with
// the evidence for one protocol of choice.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/report"
	"repro/internal/security"
)

func main() {
	log.SetFlags(0)
	protoName := flag.String("protocol", "STS", "protocol to detail (S-ECDSA, STS, SCIANC, PORAMB)")
	flag.Parse()

	an := security.NewAnalyzer(nil)
	assessments, err := an.Table3()
	if err != nil {
		log.Fatal(err)
	}

	// The summary matrix.
	header := []string{"Criterion"}
	for _, as := range assessments {
		header = append(header, as.Protocol)
	}
	t := &report.Table{Title: "Security overview (every cell = one executed attack):", Header: header}
	for _, crit := range security.Criteria() {
		row := []string{string(crit)}
		for _, as := range assessments {
			row = append(row, as.Verdicts[crit].String())
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)

	// Detail one protocol.
	var detail *security.Assessment
	for _, as := range assessments {
		if as.Protocol == *protoName {
			detail = as
		}
	}
	if detail == nil {
		log.Fatalf("unknown protocol %q", *protoName)
	}
	report.Section(os.Stdout, detail.Protocol+" — executed attacks")
	for _, f := range detail.Findings {
		verdictWord := "resisted"
		if f.Succeeded {
			verdictWord = "VULNERABLE"
		}
		fmt.Printf("  %-10s %s\n             %s\n", verdictWord, f.Attack, f.Detail)
	}

	// Fig. 8 consistency check for STS.
	for _, as := range assessments {
		if as.Protocol == "STS" {
			if err := security.ConsistentWith(as); err != nil {
				log.Fatalf("Fig. 8 inconsistency: %v", err)
			}
			fmt.Println("\nFig. 8 countermeasure mapping is consistent with the simulated verdicts.")
		}
	}
}
