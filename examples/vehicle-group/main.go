// Vehicle group keying: a gateway ECU keys a group of in-vehicle
// controllers (the Püllen et al. direction surveyed in the paper's
// related work) using pairwise STS-ECQV sessions for key distribution.
// The gateway brings the whole fleet online concurrently —
// batch-provisioned certificates, then fleet.Manager.EstablishAll
// driving every pairwise STS handshake through a worker pool — and
// demonstrates epoch rekeying on membership change: an evicted ECU
// cannot read post-eviction traffic.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/ecqv"
	"repro/internal/fleet"
	"repro/internal/group"
	"repro/internal/session"
)

func main() {
	log.SetFlags(0)

	net, err := core.NewNetwork(ec.P256(), nil)
	if err != nil {
		log.Fatal(err)
	}

	// Provision the gateway and every ECU in one batch: certificate
	// requests, ECQV issuance and key reconstruction fan out over a
	// worker pool.
	names := []string{"gateway", "bms", "evcc", "dashboard"}
	parties, err := net.ProvisionBatch(names, 0)
	if err != nil {
		log.Fatal(err)
	}
	gatewayParty, ecus := parties[0], parties[1:]

	// Establish pairwise record sessions to the whole fleet
	// concurrently; each ECU gets its own STS handshake, no two of
	// which contend on the sharded manager.
	mgr, err := fleet.NewManager(gatewayParty, core.OptII, session.DefaultPolicy)
	if err != nil {
		log.Fatal(err)
	}
	if err := errors.Join(mgr.EstablishAll(ecus, 0)...); err != nil {
		log.Fatalf("fleet establishment failed: %v", err)
	}
	for _, ecu := range ecus {
		rec, err := mgr.Seal(ecu.ID, []byte("pre-admission ping"))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := mgr.Open(ecu.ID, rec); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("fleet online: %d pairwise sessions established concurrently\n\n", len(mgr.Peers()))

	leader, err := group.NewLeader(gatewayParty, core.OptII)
	if err != nil {
		log.Fatal(err)
	}

	// Admit the three ECUs; each admission runs a pairwise STS
	// handshake and rotates the group epoch.
	members := map[ecqv.ID]*group.Member{}
	for _, p := range ecus {
		dist, err := leader.Add(p)
		if err != nil {
			log.Fatal(err)
		}
		pw, err := leader.PairwiseKey(p.ID)
		if err != nil {
			log.Fatal(err)
		}
		m, err := group.Join(p, gatewayParty.ID, pw)
		if err != nil {
			log.Fatal(err)
		}
		members[p.ID] = m
		for id, msg := range dist {
			if mm, ok := members[id]; ok {
				if err := mm.Install(msg); err != nil {
					log.Fatal(err)
				}
			}
		}
		fmt.Printf("admitted %-10s -> group epoch %d, %d members\n", p.ID, leader.Epoch(), leader.Size())
	}

	// Broadcast under the group key.
	lk, err := leader.Keys()
	if err != nil {
		log.Fatal(err)
	}
	dg, err := lk.Seal(gatewayParty.ID, 1, []byte("ignition on, all ECUs report"))
	if err != nil {
		log.Fatal(err)
	}
	for id, m := range members {
		mk, _ := m.Keys()
		sender, payload, err := mk.Open(dg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s received from %s: %q\n", id, sender, payload)
	}

	// Evict the dashboard ECU (e.g. aftermarket unit flagged by the
	// intrusion detection system) and rotate.
	evicted := ecqv.NewID("dashboard")
	staleKeys, _ := members[evicted].Keys()
	dist, err := leader.Remove(evicted)
	if err != nil {
		log.Fatal(err)
	}
	for id, msg := range dist {
		if err := members[id].Install(msg); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nevicted %s -> group epoch %d, %d members\n", evicted, leader.Epoch(), leader.Size())

	lk2, _ := leader.Keys()
	secret, err := lk2.Seal(gatewayParty.ID, 2, []byte("new charging schedule"))
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := staleKeys.Open(secret); err != nil {
		fmt.Println("evicted ECU cannot read post-eviction traffic — epoch isolation holds")
	} else {
		log.Fatal("unexpected: stale keys decrypted new traffic")
	}
	for id, m := range members {
		if id == evicted {
			continue
		}
		mk, _ := m.Keys()
		if _, _, err := mk.Open(secret); err != nil {
			log.Fatalf("%s cannot read: %v", id, err)
		}
	}
	fmt.Println("remaining members read the new epoch normally")
}
