// Vehicle group keying: a gateway ECU keys a group of in-vehicle
// controllers (the Püllen et al. direction surveyed in the paper's
// related work) using pairwise STS-ECQV sessions for key distribution.
// Demonstrates epoch rekeying on membership change: an evicted ECU
// cannot read post-eviction traffic.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/ecqv"
	"repro/internal/group"
)

func main() {
	log.SetFlags(0)

	net, err := core.NewNetwork(ec.P256(), nil)
	if err != nil {
		log.Fatal(err)
	}
	gatewayParty, err := net.Provision("gateway")
	if err != nil {
		log.Fatal(err)
	}
	leader, err := group.NewLeader(gatewayParty, core.OptII)
	if err != nil {
		log.Fatal(err)
	}

	// Admit three ECUs; each admission runs a pairwise STS handshake
	// and rotates the group epoch.
	names := []string{"bms", "evcc", "dashboard"}
	members := map[ecqv.ID]*group.Member{}
	for _, name := range names {
		p, err := net.Provision(name)
		if err != nil {
			log.Fatal(err)
		}
		dist, err := leader.Add(p)
		if err != nil {
			log.Fatal(err)
		}
		pw, err := leader.PairwiseKey(p.ID)
		if err != nil {
			log.Fatal(err)
		}
		m, err := group.Join(p, gatewayParty.ID, pw)
		if err != nil {
			log.Fatal(err)
		}
		members[p.ID] = m
		for id, msg := range dist {
			if mm, ok := members[id]; ok {
				if err := mm.Install(msg); err != nil {
					log.Fatal(err)
				}
			}
		}
		fmt.Printf("admitted %-10s -> group epoch %d, %d members\n", name, leader.Epoch(), leader.Size())
	}

	// Broadcast under the group key.
	lk, err := leader.Keys()
	if err != nil {
		log.Fatal(err)
	}
	dg, err := lk.Seal(gatewayParty.ID, 1, []byte("ignition on, all ECUs report"))
	if err != nil {
		log.Fatal(err)
	}
	for id, m := range members {
		mk, _ := m.Keys()
		sender, payload, err := mk.Open(dg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s received from %s: %q\n", id, sender, payload)
	}

	// Evict the dashboard ECU (e.g. aftermarket unit flagged by the
	// intrusion detection system) and rotate.
	evicted := ecqv.NewID("dashboard")
	staleKeys, _ := members[evicted].Keys()
	dist, err := leader.Remove(evicted)
	if err != nil {
		log.Fatal(err)
	}
	for id, msg := range dist {
		if err := members[id].Install(msg); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nevicted %s -> group epoch %d, %d members\n", evicted, leader.Epoch(), leader.Size())

	lk2, _ := leader.Keys()
	secret, err := lk2.Seal(gatewayParty.ID, 2, []byte("new charging schedule"))
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := staleKeys.Open(secret); err != nil {
		fmt.Println("evicted ECU cannot read post-eviction traffic — epoch isolation holds")
	} else {
		log.Fatal("unexpected: stale keys decrypted new traffic")
	}
	for id, m := range members {
		if id == evicted {
			continue
		}
		mk, _ := m.Keys()
		if _, _, err := mk.Open(secret); err != nil {
			log.Fatalf("%s cannot read: %v", id, err)
		}
	}
	fmt.Println("remaining members read the new epoch normally")
}
