// Quickstart: enroll two devices with a central authority, establish a
// dynamic (forward-secret) session with the STS-ECQV protocol and
// exchange an authenticated, encrypted message.
package main

import (
	"fmt"
	"log"

	"repro/ecqvsts"
)

func main() {
	log.SetFlags(0)

	// Stage 1–2 (Fig. 1): the central authority enrolls both devices,
	// deriving their ECQV implicit certificates.
	authority, err := ecqvsts.NewAuthority()
	if err != nil {
		log.Fatal(err)
	}
	alice, err := authority.Enroll("alice")
	if err != nil {
		log.Fatal(err)
	}
	bob, err := authority.Enroll("bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled %q and %q — implicit certificates of %d bytes each\n",
		alice.ID(), bob.ID(), len(alice.Certificate()))

	// Stage 3: establish a session with the paper's dynamic key
	// derivation.
	session, err := ecqvsts.Establish(ecqvsts.STS, alice, bob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session established via %s: %d handshake steps, %d bytes on the wire, forward secrecy: %v\n",
		session.KD, session.Steps, session.Bytes, session.Dynamic)

	// Exchange protected application data.
	plaintext := []byte("battery pack temperature 23.4 C, SoC 87 %")
	sealed, err := session.Seal(plaintext, []byte("telemetry"))
	if err != nil {
		log.Fatal(err)
	}
	opened, err := session.Open(sealed, []byte("telemetry"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed %d B -> %d B, opened: %q\n", len(plaintext), len(sealed), opened)

	// Each new session derives an independent key: traffic sealed in
	// this session is not decryptable in the next one.
	next, err := ecqvsts.Establish(ecqvsts.STS, alice, bob)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := next.Open(sealed, []byte("telemetry")); err != nil {
		fmt.Println("a fresh session cannot decrypt earlier traffic — ephemeral keys confirmed")
	} else {
		log.Fatal("unexpected: session keys were reused")
	}
}
