// Sensor network: the constrained-IoT scenario motivating the paper's
// related work (Porambage et al., Sciancalepore et al.). A gateway and
// a fleet of sensor nodes share one certificate authority; the example
// compares the per-node session-establishment cost of every KD
// protocol — wire bytes (Table II view) and modelled time on low-end
// hardware (Table I view) — and demonstrates why the dynamic KD
// matters when nodes are captured.
package main

import (
	"fmt"
	"log"

	"repro/ecqvsts"
)

const fleetSize = 8

func main() {
	log.SetFlags(0)

	authority, err := ecqvsts.NewAuthority()
	if err != nil {
		log.Fatal(err)
	}
	gateway, err := authority.Enroll("gateway")
	if err != nil {
		log.Fatal(err)
	}

	// Enroll the fleet.
	nodes := make([]*ecqvsts.Device, fleetSize)
	for i := range nodes {
		nodes[i], err = authority.Enroll(fmt.Sprintf("sensor-%02d", i))
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("enrolled gateway + %d sensor nodes (certificates: %d B each)\n\n",
		fleetSize, len(gateway.Certificate()))

	// --- Protocol cost comparison for one full fleet re-key.
	fmt.Println("cost of re-keying the whole fleet (one session per node):")
	fmt.Printf("  %-16s %12s %14s %22s\n", "protocol", "bytes/node", "fleet bytes", "est. time on ATmega2560")
	for _, kd := range []ecqvsts.KD{ecqvsts.STS, ecqvsts.STSOptII, ecqvsts.SECDSA, ecqvsts.SCIANC, ecqvsts.PORAMB} {
		// PORAMB needs pairwise PSKs; re-enroll a pair for it.
		a, b := gateway, nodes[0]
		if kd == ecqvsts.PORAMB {
			a, b, err = authority.EnrollPair("gateway-psk", "sensor-psk")
			if err != nil {
				log.Fatal(err)
			}
		}
		session, err := ecqvsts.Establish(kd, a, b)
		if err != nil {
			log.Fatal(err)
		}
		est, err := ecqvsts.EstimateTime(kd, "ATmega2560")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %10d B %12d B %20.1f s\n",
			kd, session.Bytes, session.Bytes*fleetSize, est.Seconds())
	}

	// --- The forward-secrecy argument, concretely.
	fmt.Println("\nnode-capture scenario:")
	s1, err := ecqvsts.Establish(ecqvsts.STS, gateway, nodes[3])
	if err != nil {
		log.Fatal(err)
	}
	reading, err := s1.Seal([]byte("seismic reading: 0.02 g"), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  sensor-03 uploaded %d B of sealed telemetry in session 1\n", len(reading))

	// The node is captured later; the attacker obtains its credentials
	// and establishes (or observes) new sessions — but session 1's key
	// was ephemeral and is gone.
	s2, err := ecqvsts.Establish(ecqvsts.STS, gateway, nodes[3])
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s2.Open(reading, nil); err != nil {
		fmt.Println("  after capture: recorded session-1 telemetry remains undecryptable (PFS)")
	} else {
		log.Fatal("unexpected: past traffic decrypted")
	}
	fmt.Println("  (with a static KD, the captured credentials would re-derive every past key —")
	fmt.Println("   see cmd/secanalysis for the executed attack)")
}
