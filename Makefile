GO ?= go

.PHONY: build test race bench bench-smoke fmt fmt-check vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Compile and execute every benchmark exactly once — catches bit-rotted
# benches without paying for full measurement runs (used by CI).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...
