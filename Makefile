GO ?= go

# bench-compare pipes go test through tee; pipefail makes the recipe
# fail when the test run fails rather than when tee does.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

# Benchmarks compared by bench-compare: the EC hot-path suites whose
# trajectory BENCH_ec_backend.json records.
BENCH_COMPARE ?= BenchmarkScalarMultAblation|BenchmarkFig3_STSOperations|BenchmarkLiveHandshake
BENCH_COUNT ?= 5

.PHONY: build test race test-purebig bench bench-smoke bench-compare bench-alloc fmt fmt-check vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The math/big oracle backend — the differential reference for the
# fixed-limb fp backend — must stay green (used by CI).
test-purebig:
	$(GO) test -tags ec_purebig ./internal/ec/...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Compile and execute every benchmark exactly once — catches bit-rotted
# benches without paying for full measurement runs (used by CI).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Old-vs-new EC backend comparison: the same hot-path benchmarks under
# the math/big oracle (-tags ec_purebig) and the fixed-limb Montgomery
# default, summarized by benchstat when installed.
bench-compare:
	$(GO) test -run='^$$' -bench='$(BENCH_COMPARE)' -benchmem -count=$(BENCH_COUNT) -tags ec_purebig . | tee bench-purebig.txt
	$(GO) test -run='^$$' -bench='$(BENCH_COMPARE)' -benchmem -count=$(BENCH_COUNT) . | tee bench-fp.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-purebig.txt bench-fp.txt; \
	else \
		echo "benchstat not installed; compare bench-purebig.txt vs bench-fp.txt by hand"; \
	fi

# Scalar-mult ablation with allocation counts plus the hard per-op
# allocation budget on the fp backend (used by CI; fails on regression
# into per-digit heap allocation).
bench-alloc:
	$(GO) test -run='^$$' -bench='BenchmarkScalarMultAblation' -benchtime=5x -benchmem .
	$(GO) test -run='TestScalarMultAllocBudget' -v ./internal/ec/

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...
