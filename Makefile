GO ?= go

# bench-compare pipes go test through tee; pipefail makes the recipe
# fail when the test run fails rather than when tee does.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

# Benchmarks compared by bench-compare: the EC hot-path suites whose
# trajectory BENCH_ec_backend.json records.
BENCH_COMPARE ?= BenchmarkScalarMultAblation|BenchmarkFig3_STSOperations|BenchmarkLiveHandshake
BENCH_COUNT ?= 5

.PHONY: build test race race-parallel test-purebig bench bench-smoke bench-compare bench-batch bench-alloc bench-scenarios scenario-smoke adversarial-smoke parallel-invariance stream-smoke fuzz-smoke fmt fmt-check vet lint doccheck linkcheck detlint cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The explicit -timeout bounds the chaos stress tests (seeded
# impairment + retransmission over the 3-segment topology) under the
# race detector's ~10× slowdown; they finish in seconds, so a hang is
# a bug, not load.
race:
	$(GO) test -race -timeout 10m ./...

# The parallel sweep path alone under the race detector: concurrent
# isolated worlds with tracing enabled, nested EstablishAll
# concurrency inside each point (used by CI as a dedicated gate — the
# full `race` target covers it too, but a dedicated run keeps the
# fabric's concurrency story falsifiable on its own).
race-parallel:
	$(GO) test -race -timeout 5m -run 'TestParallelSweep' -v ./internal/scenario

# The math/big oracle backend — the differential reference for the
# fixed-limb fp backend — must stay green (used by CI).
test-purebig:
	$(GO) test -tags ec_purebig ./internal/ec/...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Compile and execute every benchmark exactly once — catches bit-rotted
# benches without paying for full measurement runs (used by CI).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Old-vs-new EC backend comparison: the same hot-path benchmarks under
# the math/big oracle (-tags ec_purebig) and the fixed-limb Montgomery
# default, summarized by benchstat when installed.
bench-compare:
	$(GO) test -run='^$$' -bench='$(BENCH_COMPARE)' -benchmem -count=$(BENCH_COUNT) -tags ec_purebig . | tee bench-purebig.txt
	$(GO) test -run='^$$' -bench='$(BENCH_COMPARE)' -benchmem -count=$(BENCH_COUNT) . | tee bench-fp.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-purebig.txt bench-fp.txt; \
	else \
		echo "benchstat not installed; compare bench-purebig.txt vs bench-fp.txt by hand"; \
	fi

# Scalar-mult ablation with allocation counts plus the hard per-op
# allocation budgets on the fp backend (used by CI; fails on regression
# into per-digit heap allocation). The ScalarMult and VerifyBatch
# gates ride together: both guard the same fixed-limb no-alloc
# contract, one per-op and one per-batched-item.
bench-alloc:
	$(GO) test -run='^$$' -bench='BenchmarkScalarMultAblation' -benchtime=5x -benchmem .
	$(GO) test -run='TestScalarMultAllocBudget' -v ./internal/ec/
	$(GO) test -run='TestVerifyBatchAllocBudget' -v ./internal/ecdsa/

# The batch-amortized pipeline benches behind BENCH_ec_backend.json's
# batch_ops trajectory: dedicated squaring vs CIOS Mul, Montgomery-
# trick BatchInv vs sequential Fermat inversions, wave VerifyBatch vs
# N independent Verifies, and the shared-inversion table build.
# Summarized by benchstat when installed.
BENCH_BATCH ?= BenchmarkSqr$$|BenchmarkSqrViaMul|BenchmarkBatchInv|BenchmarkInvSequential|BenchmarkVerifyBatch|BenchmarkVerifySequential|BenchmarkMultTableBuild|BenchmarkBatchNormalize
bench-batch:
	$(GO) test -run='^$$' -bench='$(BENCH_BATCH)' -benchmem -count=$(BENCH_COUNT) \
		./internal/ec/... ./internal/ecdsa/ | tee bench-batch.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-batch.txt; \
	else \
		echo "benchstat not installed; read bench-batch.txt directly"; \
	fi

# One small degraded-bus sweep end to end — scenario engine, CLI,
# JSON writer — then the schema-drift gate on its own output (used by
# CI; finishes in seconds because all time is simulated). The second
# half is the schedule-invariance gate: a congested-gateway bring-up
# sweep at EstablishAll parallelism 4 runs twice with the same seed
# (plus the CLI's serial-reference self-check inside each run) and the
# two JSON outputs must be byte-identical — the fair-queuing egress
# scheduler is what makes this combination reproducible at all.
scenario-smoke: parallel-invariance adversarial-smoke stream-smoke
	$(GO) run ./cmd/scenario -name smoke -peers 4 -segments 3 \
		-sweep drop:0,0.05,0.10 -attempts 10 \
		-json scenario-smoke.json -csv scenario-smoke.csv
	$(GO) run ./cmd/scenario -validate scenario-smoke.json
	$(GO) run ./cmd/scenario -name congested-smoke -workload bringup -peers 4 -segments 3 \
		-parallelism 4 -egress-rate 800 -egress-queue 64 -sweep drop:0,0.02 \
		-check-invariance -json congested-smoke-a.json >/dev/null
	$(GO) run ./cmd/scenario -name congested-smoke -workload bringup -peers 4 -segments 3 \
		-parallelism 4 -egress-rate 800 -egress-queue 64 -sweep drop:0,0.02 \
		-check-invariance -json congested-smoke-b.json >/dev/null
	cmp congested-smoke-a.json congested-smoke-b.json
	$(GO) run ./cmd/scenario -validate congested-smoke-a.json

# The adversarial-smoke gate: a replay storm and a babbling-idiot
# attack, each run at -workers 1 and -workers 8, all three output
# formats byte-compared (the attack-workload schedule-invariance
# contract) and schema-validated — which also enforces zero accepted
# replays, so a freshness-binding regression fails CI here before it
# could ever land in a committed curve. Finishes in seconds: all time
# is simulated.
ADV_REPLAY := -workload attack -adversary replay -peers 4 -segments 3 -seed 42
ADV_BABBLE := -workload attack -adversary babble -peers 4 -segments 3 -seed 42 \
	-egress-rate 800 -egress-queue 64 -sweep attack:0,2000,8000
adversarial-smoke:
	$(GO) run ./cmd/scenario -name adv-replay $(ADV_REPLAY) -workers 1 \
		-json adv-replay-w1.json -csv adv-replay-w1.csv -trace adv-replay-w1.trace >/dev/null
	$(GO) run ./cmd/scenario -name adv-replay $(ADV_REPLAY) -workers 8 \
		-json adv-replay-w8.json -csv adv-replay-w8.csv -trace adv-replay-w8.trace >/dev/null
	cmp adv-replay-w1.json adv-replay-w8.json
	cmp adv-replay-w1.csv adv-replay-w8.csv
	cmp adv-replay-w1.trace adv-replay-w8.trace
	$(GO) run ./cmd/scenario -validate adv-replay-w8.json
	$(GO) run ./cmd/scenario -name adv-babble $(ADV_BABBLE) -workers 1 \
		-json adv-babble-w1.json -csv adv-babble-w1.csv -trace adv-babble-w1.trace >/dev/null
	$(GO) run ./cmd/scenario -name adv-babble $(ADV_BABBLE) -workers 8 \
		-json adv-babble-w8.json -csv adv-babble-w8.csv -trace adv-babble-w8.trace >/dev/null
	cmp adv-babble-w1.json adv-babble-w8.json
	cmp adv-babble-w1.csv adv-babble-w8.csv
	cmp adv-babble-w1.trace adv-babble-w8.trace
	$(GO) run ./cmd/scenario -validate adv-babble-w8.json

# The parallel-invariance gate: the same 8-point impaired sweep runs
# at -workers 1 and -workers 8 (each also emitting its full fault/
# recovery trace), and the JSON, CSV and trace outputs must be
# byte-identical — sweep-point fan-out may only change wall clock,
# never a measurement. A shared-capacity egress sweep rides the same
# gate: points never share a port, so even the flow-coupled scheduler
# is worker-invariant.
PARINV := -peers 4 -segments 3 -seed 42 -corrupt 0.01 \
	-sweep drop:0,0.01,0.02,0.03,0.04,0.05,0.06,0.08
parallel-invariance:
	$(GO) run ./cmd/scenario -name par-inv $(PARINV) -workers 1 \
		-json par-inv-w1.json -csv par-inv-w1.csv -trace par-inv-w1.trace >/dev/null
	$(GO) run ./cmd/scenario -name par-inv $(PARINV) -workers 8 \
		-json par-inv-w8.json -csv par-inv-w8.csv -trace par-inv-w8.trace >/dev/null
	cmp par-inv-w1.json par-inv-w8.json
	cmp par-inv-w1.csv par-inv-w8.csv
	cmp par-inv-w1.trace par-inv-w8.trace
	$(GO) run ./cmd/scenario -name par-inv-shared -workload bringup -peers 4 -segments 3 \
		-egress-rate 400 -egress-queue 64 -egress-shared -sweep drop:0,0.02 \
		-workers 1 -json par-inv-shared-w1.json >/dev/null
	$(GO) run ./cmd/scenario -name par-inv-shared -workload bringup -peers 4 -segments 3 \
		-egress-rate 400 -egress-queue 64 -egress-shared -sweep drop:0,0.02 \
		-workers 8 -json par-inv-shared-w8.json >/dev/null
	cmp par-inv-shared-w1.json par-inv-shared-w8.json
	$(GO) run ./cmd/scenario -validate par-inv-w8.json

# The streaming gate: a 160-point heavy-ish sweep runs once streamed
# at -workers 8 (points flush to the JSON/CSV/trace sinks in order as
# they complete, O(workers + reorder window) memory) and once
# materialized at -workers 1, and all three output files must be
# byte-identical — the streamed-vs-materialized leg of the determinism
# contract. The reorder-window bound is enforced inside the engine: a
# streamed run whose completed-point backlog ever exceeds
# workers + ReorderSlack fails, so this target failing on a clean tree
# means the memory contract broke. Finishes in seconds: all time is
# simulated.
STREAMSMOKE := -peers 3 -segments 2 -seed 42 -corrupt 0.005 \
	-sweep drop:0..0.05/160
stream-smoke:
	$(GO) run ./cmd/scenario -name stream-smoke $(STREAMSMOKE) -workers 8 -stream \
		-json stream-smoke-s.json -csv stream-smoke-s.csv -trace stream-smoke-s.trace
	$(GO) run ./cmd/scenario -name stream-smoke $(STREAMSMOKE) -workers 1 \
		-json stream-smoke-m.json -csv stream-smoke-m.csv -trace stream-smoke-m.trace
	cmp stream-smoke-s.json stream-smoke-m.json
	cmp stream-smoke-s.csv stream-smoke-m.csv
	cmp stream-smoke-s.trace stream-smoke-m.trace
	$(GO) run ./cmd/scenario -validate stream-smoke-s.json

# Regenerate the committed BENCH_scenarios.json trajectory (the
# canonical degraded-bus curves; simulated time, host-independent).
# The last two entries are the streamed heavy-traffic workloads: a
# 2048-point impairment grid and a 64-peer bring-up, recorded as
# aggregate stream blocks (points: null — the full point lists are
# exactly what is too big to commit) with the reorder-depth and heap
# high-water evidence in wall_clock.
bench-scenarios:
	$(GO) run ./cmd/scenario -name latency-vs-loss -peers 8 \
		-sweep drop:0,0.02,0.04,0.06,0.08,0.10 -bench BENCH_scenarios.json >/dev/null
	$(GO) run ./cmd/scenario -name bringup-under-churn -workload churn -peers 8 \
		-drop 0.03 -corrupt 0.005 -churn-rounds 3 -bench BENCH_scenarios.json >/dev/null
	$(GO) run ./cmd/scenario -name congested-gateway-bringup -workload bringup -peers 8 \
		-egress-rate 600 -egress-queue 256 -bench BENCH_scenarios.json >/dev/null
	$(GO) run ./cmd/scenario -name congested-gateway-bringup-8way -workload bringup -peers 8 \
		-egress-rate 600 -egress-queue 256 -parallelism 8 -check-invariance \
		-bench BENCH_scenarios.json >/dev/null
	$(GO) run ./cmd/scenario -name parallel-sweep-8pt $(PARINV) -workers 8 \
		-check-invariance -bench BENCH_scenarios.json >/dev/null
	$(GO) run ./cmd/scenario -name shared-gateway-bringup -workload bringup -peers 8 \
		-egress-rate 600 -egress-queue 256 -egress-shared \
		-bench BENCH_scenarios.json >/dev/null
	$(GO) run ./cmd/scenario -name replay-storm -workload attack -adversary replay \
		-peers 8 -bench BENCH_scenarios.json >/dev/null
	$(GO) run ./cmd/scenario -name babbling-idiot -workload attack -adversary babble \
		-peers 8 -egress-rate 800 -egress-queue 64 \
		-sweep attack:0,1000,2000,4000,8000,16000 -bench BENCH_scenarios.json >/dev/null
	$(GO) run ./cmd/scenario -name partition-heal -workload attack -adversary partition \
		-peers 8 -sweep attack:0.001,0.9,1.8,3.5,6 \
		-bench BENCH_scenarios.json >/dev/null
	$(GO) run ./cmd/scenario -name day-in-the-life -workload day-in-the-life \
		-adversary inject,replay -attack-intensity 0.5 -peers 8 -drop 0.01 \
		-bench BENCH_scenarios.json >/dev/null
	$(GO) run ./cmd/scenario -name impairment-grid-2k -peers 2 -segments 2 \
		-corrupt 0.003 -sweep drop:0..0.06/2048 -workers 0 -stream \
		-bench BENCH_scenarios.json >/dev/null
	$(GO) run ./cmd/scenario -name bringup-64peer -workload bringup -peers 64 \
		-segments 3 -parallelism 8 -stream \
		-bench BENCH_scenarios.json >/dev/null

# Brief fuzzing of the protocol parsers (committed corpora under
# testdata/fuzz replay in every plain `go test` run; this target digs
# further — used by CI with a short budget, locally run longer).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/cantp -fuzz FuzzReceiverPush -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cantp -fuzz FuzzFlowControlParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport -fuzz FuzzMessageTrailer -fuzztime $(FUZZTIME)

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The godoc contract on the deterministic-simulation packages: every
# package comment and every exported declaration documented (doc
# comments there state determinism obligations, so a missing one is a
# missing contract). Zero dependencies — a go/ast walk.
DOCCHECK_PKGS := ./internal/scenario ./internal/canbus ./internal/security \
	./internal/transport ./internal/fleet ./internal/cantp ./internal/conc \
	./internal/detrand ./internal/ec ./internal/ecdsa
doccheck:
	$(GO) run ./cmd/doccheck $(DOCCHECK_PKGS)

# Every relative link in the repo's markdown must resolve to a file
# that exists (external URLs are out of scope — no network in CI).
linkcheck:
	$(GO) run ./cmd/linkcheck README.md docs/*.md

# The determinism- and hot-path-contract analyzers (internal/analysis
# + detcheck) over the whole module: wallclock, detrand, maporder,
# spawn, hotpath. Pure stdlib like doccheck/linkcheck — no installs,
# no network. Exits non-zero on any unsuppressed finding, malformed
# //detlint:allow annotation, or unused annotation, so the escape set
# in the tree is exactly the documented exceptions.
detlint:
	$(GO) run ./cmd/detlint ./...

# Static analysis beyond vet. doccheck, linkcheck and detlint are
# in-repo (no install needed); staticcheck and govulncheck are not
# vendored — CI installs them at pinned versions, and locally the
# target degrades to the in-repo checks with a notice rather than
# failing on a missing binary.
lint: vet doccheck linkcheck detlint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Coverage with a committed ratchet: the build fails when total
# statement coverage falls below COVERAGE_BASELINE. Raise the baseline
# when coverage genuinely improves; never lower it to make a PR pass.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	base=$$(cat COVERAGE_BASELINE); \
	echo "coverage: $$total% (baseline $$base%)"; \
	awk -v t="$$total" -v b="$$base" 'BEGIN { exit (t + 0 >= b + 0) ? 0 : 1 }' || \
		{ echo "FAIL: coverage $$total% fell below the $$base% baseline"; exit 1; }
