package ecqvsts

import (
	"fmt"
	"testing"
)

func TestEnrollBatch(t *testing.T) {
	authority, err := NewAuthority(WithRand(newDetRand(42)))
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 24)
	for i := range names {
		names[i] = fmt.Sprintf("node-%02d", i)
	}
	devices, err := authority.EnrollBatch(names)
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) != len(names) {
		t.Fatalf("%d devices for %d names", len(devices), len(names))
	}
	seen := map[string]bool{}
	for i, d := range devices {
		if d == nil {
			t.Fatalf("device %d nil", i)
		}
		if d.ID() != names[i] {
			t.Errorf("device %d: ID %q, want %q", i, d.ID(), names[i])
		}
		cert := string(d.Certificate())
		if seen[cert] {
			t.Errorf("device %d: duplicate certificate", i)
		}
		seen[cert] = true
	}

	// Batch-enrolled devices interoperate with the normal lifecycle.
	s, err := Establish(STS, devices[0], devices[1])
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s.Seal([]byte("batch hello"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pt, err := s.Open(ct, nil); err != nil || string(pt) != "batch hello" {
		t.Fatalf("roundtrip: %q, %v", pt, err)
	}
}

func TestEnrollBatchEmpty(t *testing.T) {
	authority, err := NewAuthority(WithRand(newDetRand(43)))
	if err != nil {
		t.Fatal(err)
	}
	devices, err := authority.EnrollBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) != 0 {
		t.Fatalf("%d devices from empty batch", len(devices))
	}
}

func TestEstablishMany(t *testing.T) {
	authority, err := NewAuthority(WithRand(newDetRand(44)))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"gw", "a", "b", "c", "d", "e"}
	devices, err := authority.EnrollBatch(names)
	if err != nil {
		t.Fatal(err)
	}
	self, peers := devices[0], devices[1:]

	for _, workers := range []int{1, 4, 0} {
		sessions, err := EstablishMany(STSOptII, self, peers, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(sessions) != len(peers) {
			t.Fatalf("workers=%d: %d sessions", workers, len(sessions))
		}
		for i, s := range sessions {
			if s == nil {
				t.Fatalf("workers=%d: session %d nil", workers, i)
			}
			if !s.Dynamic {
				t.Errorf("session %d not dynamic", i)
			}
			msg := []byte(fmt.Sprintf("to peer %d", i))
			ct, err := s.Seal(msg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if pt, err := s.Open(ct, nil); err != nil || string(pt) != string(msg) {
				t.Fatalf("session %d roundtrip: %v", i, err)
			}
		}
	}
}

func TestEstablishManyPartialFailure(t *testing.T) {
	authority, err := NewAuthority(WithRand(newDetRand(45)))
	if err != nil {
		t.Fatal(err)
	}
	devices, err := authority.EnrollBatch([]string{"gw", "ok-1", "ok-2"})
	if err != nil {
		t.Fatal(err)
	}
	peers := []*Device{devices[1], nil, devices[2]} // hole in the fleet
	sessions, err := EstablishMany(STS, devices[0], peers, 2)
	if err == nil {
		t.Fatal("nil peer did not surface an error")
	}
	if sessions[0] == nil || sessions[2] == nil {
		t.Error("healthy peers did not establish")
	}
	if sessions[1] != nil {
		t.Error("nil peer produced a session")
	}
}

func TestEstablishManyErrors(t *testing.T) {
	if _, err := EstablishMany(STS, nil, nil, 0); err == nil {
		t.Error("nil self accepted")
	}
	authority, _ := NewAuthority(WithRand(newDetRand(46)))
	devices, err := authority.EnrollBatch([]string{"gw"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstablishMany(KD(99), devices[0], nil, 0); err == nil {
		t.Error("unknown protocol accepted")
	}
	sessions, err := EstablishMany(STS, devices[0], nil, 0)
	if err != nil || len(sessions) != 0 {
		t.Errorf("empty fleet: %v, %d sessions", err, len(sessions))
	}
}
