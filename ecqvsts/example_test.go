package ecqvsts_test

import (
	"fmt"
	"math/rand"

	"repro/ecqvsts"
	"repro/internal/session"
)

// exampleRand makes the examples deterministic.
type exampleRand struct{ r *rand.Rand }

func (d *exampleRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

// Example shows the complete lifecycle: enrollment, dynamic session
// establishment and protected messaging.
func Example() {
	authority, err := ecqvsts.NewAuthority(ecqvsts.WithRand(&exampleRand{r: rand.New(rand.NewSource(1))}))
	if err != nil {
		panic(err)
	}
	alice, _ := authority.Enroll("alice")
	bob, _ := authority.Enroll("bob")

	s, err := ecqvsts.Establish(ecqvsts.STS, alice, bob)
	if err != nil {
		panic(err)
	}
	fmt.Printf("certificate: %d bytes\n", len(alice.Certificate()))
	fmt.Printf("handshake: %d steps, %d bytes, forward secrecy %v\n", s.Steps, s.Bytes, s.Dynamic)

	ct, _ := s.Seal([]byte("hello bob"), nil)
	pt, _ := s.Open(ct, nil)
	fmt.Printf("message: %s\n", pt)
	// Output:
	// certificate: 101 bytes
	// handshake: 4 steps, 491 bytes, forward secrecy true
	// message: hello bob
}

// ExampleSession_Channels shows the record layer with a rekey policy.
func ExampleSession_Channels() {
	authority, _ := ecqvsts.NewAuthority(ecqvsts.WithRand(&exampleRand{r: rand.New(rand.NewSource(2))}))
	a, _ := authority.Enroll("ecu-a")
	b, _ := authority.Enroll("ecu-b")
	s, _ := ecqvsts.Establish(ecqvsts.STSOptII, a, b)

	sender, receiver, _ := s.Channels(session.Policy{MaxRecords: 100})
	rec, _ := sender.Seal([]byte("telemetry frame"))
	pt, _ := receiver.Open(rec)
	fmt.Printf("%s\n", pt)

	// Replays are rejected by the record layer.
	if _, err := receiver.Open(rec); err != nil {
		fmt.Println("replay rejected")
	}
	// Output:
	// telemetry frame
	// replay rejected
}

// ExampleEstimateTime previews Table I timings without hardware.
func ExampleEstimateTime() {
	sts, _ := ecqvsts.EstimateTime(ecqvsts.STS, "STM32F767")
	secdsa, _ := ecqvsts.EstimateTime(ecqvsts.SECDSA, "STM32F767")
	fmt.Printf("STS costs %.0f%% more than static ECDSA on the STM32F767\n",
		(sts.Seconds()/secdsa.Seconds()-1)*100)
	// Output:
	// STS costs 23% more than static ECDSA on the STM32F767
}
