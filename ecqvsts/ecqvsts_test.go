package ecqvsts

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/session"
)

type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func enrollPair(t *testing.T, seed int64) (*Device, *Device) {
	t.Helper()
	authority, err := NewAuthority(WithRand(newDetRand(seed)))
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := authority.EnrollPair("alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestQuickstartFlow(t *testing.T) {
	a, b := enrollPair(t, 1)
	if a.ID() != "alice" || b.ID() != "bob" {
		t.Errorf("IDs: %s, %s", a.ID(), b.ID())
	}
	if len(a.Certificate()) != 101 {
		t.Errorf("certificate size %d, want 101", len(a.Certificate()))
	}

	session, err := Establish(STS, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !session.Dynamic {
		t.Error("STS session not marked dynamic")
	}
	if session.Steps != 4 || session.Bytes != 491 {
		t.Errorf("handshake cost %d steps / %d B", session.Steps, session.Bytes)
	}

	msg := []byte("battery cell voltages nominal")
	ct, err := session.Seal(msg, []byte("frame-7"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ct) != len(msg)+session.Overhead() {
		t.Errorf("ciphertext size %d", len(ct))
	}
	pt, err := session.Open(ct, []byte("frame-7"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Error("round trip failed")
	}
	if _, err := session.Open(ct, []byte("frame-8")); err == nil {
		t.Error("wrong AAD accepted")
	}
}

func TestEveryProtocolEstablishes(t *testing.T) {
	a, b := enrollPair(t, 2)
	for _, kd := range KDs() {
		t.Run(kd.String(), func(t *testing.T) {
			s, err := Establish(kd, a, b)
			if err != nil {
				t.Fatal(err)
			}
			ct, err := s.Seal([]byte("x"), nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Open(ct, nil); err != nil {
				t.Fatal(err)
			}
			if kd.Dynamic() != (kd == STS || kd == STSOptI || kd == STSOptII) {
				t.Errorf("Dynamic() = %v", kd.Dynamic())
			}
		})
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	a, b := enrollPair(t, 3)
	s1, err := Establish(STS, a, b)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Establish(STS, a, b)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s1.Seal([]byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Open(ct, nil); err == nil {
		t.Error("session 2 decrypted session 1 traffic (keys not ephemeral)")
	}
}

func TestEstablishErrors(t *testing.T) {
	a, _ := enrollPair(t, 4)
	if _, err := Establish(STS, a, nil); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := Establish(KD(99), a, a); err == nil {
		t.Error("unknown protocol accepted")
	}
	if KD(99).String() != "unknown" {
		t.Error("unknown KD name")
	}
}

func TestWithCurveOption(t *testing.T) {
	authority, err := NewAuthority(WithCurve("secp224r1"), WithRand(newDetRand(5)))
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := authority.EnrollPair("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Establish(STS, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// P-224 certificates are smaller than the 101-byte P-256 form.
	if len(a.Certificate()) >= 101 {
		t.Errorf("P-224 certificate size %d", len(a.Certificate()))
	}
	if s.Bytes >= 491 {
		t.Errorf("P-224 handshake bytes %d, want < 491", s.Bytes)
	}
}

func TestChannels(t *testing.T) {
	a, b := enrollPair(t, 6)
	s, err := Establish(STS, a, b)
	if err != nil {
		t.Fatal(err)
	}
	init, resp, err := s.Channels(session.Policy{MaxRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := init.Seal([]byte("record 0"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := resp.Open(rec)
	if err != nil || !bytes.Equal(got, []byte("record 0")) {
		t.Fatalf("record round trip: %v", err)
	}
	// Replay must fail.
	if _, err := resp.Open(rec); err == nil {
		t.Error("replay accepted")
	}
	// Policy exhaustion forces a rekey.
	if _, err := init.Seal([]byte("record 1")); err != nil {
		t.Fatal(err)
	}
	if _, err := init.Seal([]byte("record 2")); !errors.Is(err, session.ErrRekeyRequired) {
		t.Errorf("policy not enforced: %v", err)
	}
	// Rekey: a fresh Establish yields working channels again.
	s2, err := Establish(STS, a, b)
	if err != nil {
		t.Fatal(err)
	}
	init2, resp2, err := s2.Channels(session.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := init2.Seal([]byte("after rekey"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resp2.Open(rec2); err != nil {
		t.Fatal(err)
	}
	// Old records do not open on the new session's channels.
	if _, err := resp2.Open(rec); err == nil {
		t.Error("pre-rekey record accepted after rekey")
	}
}

func TestEstimateTime(t *testing.T) {
	sts, err := EstimateTime(STS, "STM32F767")
	if err != nil {
		t.Fatal(err)
	}
	secdsa, err := EstimateTime(SECDSA, "STM32F767")
	if err != nil {
		t.Fatal(err)
	}
	// Table I shape: STS ≈ 3.1 s, S-ECDSA ≈ 2.5 s.
	if sts < 2*time.Second || sts > 4*time.Second {
		t.Errorf("STS estimate %v", sts)
	}
	ratio := float64(sts) / float64(secdsa)
	if ratio < 1.15 || ratio > 1.35 {
		t.Errorf("STS/S-ECDSA ratio %.2f", ratio)
	}
	if _, err := EstimateTime(STS, "ESP32"); err == nil {
		t.Error("unknown device accepted")
	}

	devices := Devices()
	if len(devices) != 4 {
		t.Errorf("%d devices", len(devices))
	}
}
