// Package ecqvsts is the public API of the ECQV-STS reproduction: a
// library for establishing dynamic (forward-secret) secure sessions
// between embedded devices that authenticate with ECQV implicit
// certificates.
//
// The typical lifecycle mirrors the paper's Figure 1:
//
//	authority, _ := ecqvsts.NewAuthority()
//	alice, _ := authority.Enroll("alice")      // stages 1–2: derive certificate
//	bob, _ := authority.Enroll("bob")
//	session, _ := ecqvsts.Establish(ecqvsts.STS, alice, bob) // stage 3
//	ct, _ := session.Seal([]byte("battery status: ok"), nil)
//
// At fleet scale the same stages batch and parallelize: EnrollBatch
// provisions many devices through one worker pool, and EstablishMany
// drives many handshakes concurrently.
//
// Establish selects among the paper's key-derivation protocols. STS
// (the paper's contribution) is the only dynamic KD: every session
// derives an independent ephemeral key, so a later compromise of
// device credentials does not expose recorded traffic. The baselines
// (SECDSA, SCIANC, PORAMB) are provided for comparison and for
// running the paper's experiments.
package ecqvsts

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/aead"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/hwmodel"
	"repro/internal/kdf"
	"repro/internal/session"
)

// KD selects a key-derivation protocol.
type KD int

const (
	// STS is the paper's dynamic key derivation: Station-to-Station
	// ephemeral ECDH with ECDSA authentication under ECQV keys.
	STS KD = iota
	// STSOptI is STS with the Opt. I pipelining (§IV-C).
	STSOptI
	// STSOptII is STS with the Opt. II pipelining.
	STSOptII
	// SECDSA is the static ECDSA baseline (Basic et al.).
	SECDSA
	// SECDSAExt is S-ECDSA with finished messages.
	SECDSAExt
	// SCIANC is the symmetric-authentication baseline of
	// Sciancalepore et al.
	SCIANC
	// PORAMB is the pre-shared-MAC baseline of Porambage et al.
	PORAMB
)

// protocol materializes the protocol implementation.
func (k KD) protocol() (core.Protocol, error) {
	switch k {
	case STS:
		return core.NewSTS(core.OptNone), nil
	case STSOptI:
		return core.NewSTS(core.OptI), nil
	case STSOptII:
		return core.NewSTS(core.OptII), nil
	case SECDSA:
		return core.NewSECDSA(false), nil
	case SECDSAExt:
		return core.NewSECDSA(true), nil
	case SCIANC:
		return core.NewSCIANC(), nil
	case PORAMB:
		return core.NewPORAMB(), nil
	}
	return nil, fmt.Errorf("ecqvsts: unknown protocol %d", int(k))
}

// String implements fmt.Stringer.
func (k KD) String() string {
	p, err := k.protocol()
	if err != nil {
		return "unknown"
	}
	return p.Name()
}

// Dynamic reports whether the protocol provides per-session ephemeral
// keys (perfect forward secrecy).
func (k KD) Dynamic() bool {
	p, err := k.protocol()
	if err != nil {
		return false
	}
	return p.Dynamic()
}

// KDs lists every available protocol.
func KDs() []KD { return []KD{STS, STSOptI, STSOptII, SECDSA, SECDSAExt, SCIANC, PORAMB} }

// Authority is the central certificate authority of the network
// (Figure 1's "Central Authority").
type Authority struct {
	net *core.Network
}

// Option configures an Authority.
type Option func(*options)

type options struct {
	curve *ec.Curve
	rand  io.Reader
}

// WithCurve selects the elliptic curve (default secp256r1).
func WithCurve(name string) Option {
	return func(o *options) {
		if c, err := ec.CurveByName(name); err == nil {
			o.curve = c
		}
	}
}

// WithRand injects a deterministic randomness source (tests,
// reproducible experiments).
func WithRand(r io.Reader) Option {
	return func(o *options) { o.rand = r }
}

// NewAuthority creates a CA on secp256r1 (overridable via options).
func NewAuthority(opts ...Option) (*Authority, error) {
	o := &options{curve: ec.P256()}
	for _, fn := range opts {
		fn(o)
	}
	net, err := core.NewNetwork(o.curve, o.rand)
	if err != nil {
		return nil, err
	}
	return &Authority{net: net}, nil
}

// Device is an enrolled endpoint holding an ECQV certificate and its
// reconstructed private key.
type Device struct {
	party *core.Party
}

// Enroll provisions a device: certificate request, ECQV issuance, and
// private-key reconstruction.
func (a *Authority) Enroll(name string) (*Device, error) {
	p, err := a.net.Provision(name)
	if err != nil {
		return nil, err
	}
	return &Device{party: p}, nil
}

// EnrollBatch provisions many devices concurrently: certificate
// requests, batched ECQV issuance and private-key reconstruction fan
// out over a worker pool sized to GOMAXPROCS, amortizing the per-curve
// precomputation across the whole batch. Devices align with names; if
// any enrollment fails, the per-name errors are joined into the
// returned error and the corresponding slots are nil.
func (a *Authority) EnrollBatch(names []string) ([]*Device, error) {
	parties, err := a.net.ProvisionBatch(names, 0)
	devices := make([]*Device, len(parties))
	for i, p := range parties {
		if p != nil {
			devices[i] = &Device{party: p}
		}
	}
	return devices, err
}

// EnrollPair provisions two devices and installs the pairwise
// pre-shared key required by the PORAMB baseline.
func (a *Authority) EnrollPair(nameA, nameB string) (*Device, *Device, error) {
	pa, pb, err := a.net.Pair(nameA, nameB)
	if err != nil {
		return nil, nil, err
	}
	return &Device{party: pa}, &Device{party: pb}, nil
}

// ID returns the device identity string.
func (d *Device) ID() string { return d.party.ID.String() }

// Certificate returns the device's encoded implicit certificate
// (101 bytes on secp256r1).
func (d *Device) Certificate() []byte { return d.party.Cert.Encode() }

// Session is an established secure session.
type Session struct {
	// KD is the protocol that derived this session.
	KD KD
	// Dynamic records whether the key is ephemeral.
	Dynamic bool
	// Steps and Bytes summarize the handshake cost (Table II view).
	Steps int
	Bytes int

	encKey []byte
	macKey []byte
	scheme aead.Scheme
}

// Establish runs the selected KD protocol between two enrolled devices
// and returns the shared session.
func Establish(kd KD, a, b *Device) (*Session, error) {
	if a == nil || b == nil {
		return nil, errors.New("ecqvsts: nil device")
	}
	p, err := kd.protocol()
	if err != nil {
		return nil, err
	}
	res, err := p.Run(a.party, b.party)
	if err != nil {
		return nil, err
	}
	key, err := res.SessionKey()
	if err != nil {
		return nil, err
	}
	if len(key) != kdf.SessionKeySize+kdf.MACKeySize {
		return nil, fmt.Errorf("ecqvsts: unexpected key block size %d", len(key))
	}
	return &Session{
		KD:      kd,
		Dynamic: p.Dynamic(),
		Steps:   res.Steps(),
		Bytes:   res.TotalBytes(),
		encKey:  key[:kdf.SessionKeySize],
		macKey:  key[kdf.SessionKeySize:],
		scheme:  aead.Default,
	}, nil
}

// EstablishMany runs the selected KD protocol from one device to many
// peers concurrently, through a pool of at most parallelism workers
// (GOMAXPROCS when ≤ 0) — the fleet-scale establishment path (a BMS
// keying every EVCC it will talk to, a gateway keying its sensor
// network). Sessions align with peers; per-peer failures are joined
// into the returned error and leave their slot nil, so one bad peer
// does not abort the rest of the fleet.
func EstablishMany(kd KD, self *Device, peers []*Device, parallelism int) ([]*Session, error) {
	if self == nil {
		return nil, errors.New("ecqvsts: nil device")
	}
	if _, err := kd.protocol(); err != nil {
		return nil, err
	}
	sessions := make([]*Session, len(peers))
	errs := make([]error, len(peers))
	conc.ForEach(len(peers), parallelism, func(i int) {
		s, err := Establish(kd, self, peers[i])
		if err != nil {
			errs[i] = fmt.Errorf("ecqvsts: peer %d: %w", i, err)
			return
		}
		sessions[i] = s
	})
	return sessions, errors.Join(errs...)
}

// Seal encrypts and authenticates application data under the session
// key (AES-128-CTR + HMAC-SHA-256 encrypt-then-MAC).
func (s *Session) Seal(plaintext, aad []byte) ([]byte, error) {
	return s.scheme.Seal(s.encKey, s.macKey, plaintext, aad)
}

// Open verifies and decrypts a Seal output.
func (s *Session) Open(sealed, aad []byte) ([]byte, error) {
	return s.scheme.Open(s.encKey, s.macKey, sealed, aad)
}

// Overhead returns the ciphertext expansion of Seal in bytes.
func (s *Session) Overhead() int { return s.scheme.Overhead() }

// Channels opens the bidirectional record layer over this session: a
// channel pair with per-direction sequence numbers, replay rejection
// and a key-lifetime policy. When the policy trips, both channels
// return session.ErrRekeyRequired and the caller re-runs Establish —
// the dynamic-rekey loop the paper advocates.
func (s *Session) Channels(policy session.Policy) (initiator, responder *session.Channel, err error) {
	keyBlock := append(append([]byte(nil), s.encKey...), s.macKey...)
	return session.NewPair(keyBlock, policy)
}

// EstimateTime predicts the handshake processing time of a protocol on
// one of the paper's device models ("ATmega2560", "S32K144",
// "STM32F767", "RaspberryPi4"), both endpoints on the same device —
// the Table I quantity.
func EstimateTime(kd KD, device string) (time.Duration, error) {
	p, err := kd.protocol()
	if err != nil {
		return 0, err
	}
	model, err := hwmodel.New()
	if err != nil {
		return 0, err
	}
	dev, err := model.Device(device)
	if err != nil {
		return 0, err
	}
	ms, err := model.ProtocolMS(p, dev, dev)
	if err != nil {
		return 0, err
	}
	return time.Duration(ms * float64(time.Millisecond)), nil
}

// Devices lists the supported device model names.
func Devices() []string {
	model, err := hwmodel.New()
	if err != nil {
		return nil
	}
	out := make([]string, 0, 4)
	for _, d := range model.Devices() {
		out = append(out, d.Name)
	}
	return out
}
