// Command linkcheck verifies the relative links in the repo's
// markdown files: every [text](target) whose target is not an
// external URL must point at a file or directory that exists
// (anchors are stripped; a missing anchor is a soft failure markdown
// renderers tolerate, a missing file is a broken doc). No network
// access, no dependencies — external URLs are out of scope by design
// so the check stays deterministic and CI-safe.
//
// Usage:
//
//	go run ./cmd/linkcheck README.md docs/*.md
//
// Exits non-zero listing every dangling link as file:line: target.
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links, non-greedily so multiple
// links on one line each match. Images (![alt](src)) match too —
// a dangling image is just as broken.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <markdown-file>...")
		os.Exit(2)
	}
	broken := 0
	for _, path := range os.Args[1:] {
		n, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		broken += n
	}
	if broken > 0 {
		fmt.Printf("linkcheck: %d dangling links\n", broken)
		os.Exit(1)
	}
}

// checkFile scans one markdown file and reports its dangling relative
// links, returning how many it found.
func checkFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	broken := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	inFence := false
	for sc.Scan() {
		line++
		text := sc.Text()
		// Skip fenced code blocks: example snippets aren't links.
		if strings.HasPrefix(strings.TrimSpace(text), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if skip(target) {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // pure in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s:%d: dangling link %s\n", path, line, m[1])
				broken++
			}
		}
	}
	return broken, sc.Err()
}

// skip reports whether a link target is out of scope: external URLs
// and mail links need a network to verify, which this checker
// deliberately does not have.
func skip(target string) bool {
	for _, p := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(target, p) {
			return true
		}
	}
	return false
}
