// Command secanalysis regenerates the paper's security evaluation:
// Table III (security overview of the KD protocols, with every verdict
// derived from an executed attack simulation) and Figure 8 (the
// STS-ECQV threat/countermeasure mapping).
//
// Usage:
//
//	secanalysis            # Table III + attack evidence + Fig. 8
//	secanalysis -figure 8  # Fig. 8 only
//	secanalysis -evidence  # include per-attack findings
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/report"
	"repro/internal/security"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("secanalysis: ")
	figure := flag.Int("figure", 0, "print only the given figure (8)")
	evidence := flag.Bool("evidence", false, "print the attack evidence behind each verdict")
	flag.Parse()

	an := security.NewAnalyzer(nil)

	if *figure != 8 {
		printTable3(an, *evidence)
	}
	if *figure == 0 || *figure == 8 {
		printFigure8(an)
	}
}

func printTable3(an *security.Analyzer, evidence bool) {
	report.Section(os.Stdout, "Table III — security overview of the KD protocols (simulated attacks)")
	assessments, err := an.Table3()
	if err != nil {
		log.Fatal(err)
	}

	header := []string{"Criterion"}
	for _, as := range assessments {
		header = append(header, as.Protocol)
	}
	t := &report.Table{Header: header}
	for _, crit := range security.Criteria() {
		row := []string{string(crit)}
		for _, as := range assessments {
			row = append(row, as.Verdicts[crit].String())
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
	fmt.Println("\n  X — weak or no countermeasure, ∆ — partial protection, ✓ — fully protected")
	fmt.Println("  every verdict is computed from an attack executed against real transcripts.")

	if evidence {
		for _, as := range assessments {
			report.Section(os.Stdout, as.Protocol+" — attack evidence")
			for _, f := range as.Findings {
				status := "FAILED "
				if f.Succeeded {
					status = "SUCCESS"
				}
				fmt.Printf("  [%s] %s\n           %s\n", status, f.Attack, f.Detail)
			}
		}
	}
}

func printFigure8(an *security.Analyzer) {
	report.Section(os.Stdout, "Figure 8 — STS-ECQV KD threat model and countermeasures")
	for _, m := range security.Fig8Mapping() {
		assets := make([]string, len(m.Assets))
		for i, a := range m.Assets {
			assets[i] = string(a)
		}
		counters := make([]string, len(m.Counter))
		for i, c := range m.Counter {
			counters[i] = string(c)
		}
		residual := ""
		if m.Residual {
			residual = "   [R] partial protection"
		}
		fmt.Printf("  [%s] %-24s  assets: %-36s\n", m.ID, m.Name, strings.Join(assets, ", "))
		fmt.Printf("       countered by: %s%s\n", strings.Join(counters, " + "), residual)
	}
}
