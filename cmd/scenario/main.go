// Command scenario runs declarative degraded-bus measurement
// scenarios over the simulated multi-segment CAN fabric and writes
// structured measurements: handshake-latency-vs-loss curves,
// per-Table-II-step retransmission and overhead accounting, fleet
// bring-up and churn costs. Every run is seeded and content-keyed, so
// a published curve is exactly reproducible from its command line.
//
// Examples:
//
//	# Latency-vs-loss curve, 8 peers across 3 segments, 0–10% loss,
//	# sweep points fanned out one per core (byte-identical to -workers 1):
//	scenario -peers 8 -sweep drop:0,0.02,0.04,0.06,0.08,0.10 \
//	         -workers 0 -json curve.json -csv curve.csv
//
//	# Fleet bring-up under churn behind a congested gateway:
//	scenario -workload churn -peers 8 -egress-rate 800 -json churn.json
//
//	# Victim-handshake latency vs babble rate, fair-queuing gateway
//	# isolating the victims:
//	scenario -workload attack -adversary babble -egress-rate 800 \
//	         -sweep attack:0,1000,4000,16000 -json babble.json
//
//	# Replay storm: record every handshake, re-inject it verbatim,
//	# assert zero accepted replays end-to-end:
//	scenario -workload attack -adversary replay -json replay.json
//
//	# Heavy traffic: a 2048-point impairment grid streamed straight to
//	# disk — completed points flush in order and are released, so peak
//	# memory is O(workers + reorder window), not O(points). Output is
//	# byte-identical to the materialized path:
//	scenario -peers 2 -sweep drop:0..0.06/2048 -workers 0 -stream \
//	         -json grid.json -csv grid.csv
//
//	# Schema-drift gate (CI): re-validate an emitted file:
//	scenario -validate curve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/canbus"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: parse flags from args, execute, write
// human-facing output to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	var (
		name         = fs.String("name", "", "scenario name (defaults to workload-axis)")
		workload     = fs.String("workload", "latency", "workload: latency | bringup | churn | attack | day-in-the-life")
		peers        = fs.Int("peers", 8, "fleet size")
		segments     = fs.Int("segments", 3, "CAN segments in the gateway chain")
		seed         = fs.Uint64("seed", 42, "impairment and randomness seed")
		attempts     = fs.Int("attempts", 10, "per-handshake retry budget")
		parallelism  = fs.Int("parallelism", 1, "EstablishAll workers (bringup/churn)")
		churnRounds  = fs.Int("churn-rounds", 3, "drop/re-establish rounds (churn)")
		gwLatency    = fs.Duration("gateway-latency", 50*time.Microsecond, "store-and-forward latency per hop")
		egressRate   = fs.Float64("egress-rate", 0, "gateway egress rate limit in frames/s (0 = uncongested)")
		egressQueue  = fs.Int("egress-queue", 0, "gateway egress queue bound (0 = unbounded; needs -egress-rate)")
		egressShared = fs.Bool("egress-shared", false, "egress rate caps each port's aggregate throughput, divided fairly across flows (default: per conversation flow; needs -egress-rate)")
		workers      = fs.Int("workers", 1, "sweep points simulated concurrently, each on an isolated fabric (0 = one per core); JSON, CSV and trace output are byte-identical for any value")
		drop         = fs.Float64("drop", 0, "base frame drop rate [0,1]")
		corrupt      = fs.Float64("corrupt", 0, "base frame corruption rate [0,1]")
		duplicate    = fs.Float64("duplicate", 0, "base frame duplication rate [0,1]")
		delayRate    = fs.Float64("delay-rate", 0, "base frame delay rate [0,1]")
		delay        = fs.Duration("delay", 0, "extra latency per delayed frame (with -delay-rate)")
		sweep        = fs.String("sweep", "", "sweep spec: [axis:]p1,p2,... (axis: drop | corrupt | duplicate | attack); a token lo..hi/n expands to n evenly spaced points")
		adversaries  = fs.String("adversary", "", "comma list of adversaries for the attack workloads: replay | inject | babble | partition")
		attackInt    = fs.Float64("attack-intensity", 0, "adversary intensity (babble: frames/s; inject: forge probability [0,1]; partition: heal window in seconds; replay: session cap, 0 = all); an attack sweep overrides it per point")
		attackSeg    = fs.Int("attack-segment", -1, "bus segment the adversaries operate on (-1 = kind default: last segment, babble segment 0)")
		attackStart  = fs.Duration("attack-start", 0, "attack onset delay past the workload start (simulated; 0 = kind default)")
		jsonPath     = fs.String("json", "", "write the result JSON here ('-' or empty = stdout)")
		csvPath      = fs.String("csv", "", "also write the flattened curve CSV here")
		tracePath    = fs.String("trace", "", "also write the full fault/recovery trace here")
		benchPath    = fs.String("bench", "", "append the result to this benchmark trajectory file")
		validate     = fs.String("validate", "", "validate an emitted JSON file against the schema and exit")
		checkInv     = fs.Bool("check-invariance", false, "re-run the scenario serially (parallelism 1) and fail unless the results are byte-identical — the schedule-invariance self-check")
		stream       = fs.Bool("stream", false, "stream each completed point to the JSON/CSV/trace outputs in order instead of materializing the whole result — byte-identical output, O(workers) memory; for the sweeps too big to hold")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			return err
		}
		r, err := scenario.ValidateJSON(data)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: schema v%d ok — scenario %q, %d point(s)\n", *validate, r.SchemaVersion, r.Name, len(r.Points))
		return nil
	}

	if *workers < 0 {
		return fmt.Errorf("-workers must be ≥ 0 (0 = one worker per core), got %d", *workers)
	}
	axis, points, err := parseSweep(*sweep)
	if err != nil {
		return err
	}
	s := scenario.Scenario{
		Name:           *name,
		Seed:           *seed,
		Peers:          *peers,
		Segments:       *segments,
		GatewayLatency: *gwLatency,
		Egress:         canbus.EgressPolicy{Rate: *egressRate, Queue: *egressQueue, Shared: *egressShared},
		Profile:        scenario.Profile{Drop: *drop, Corrupt: *corrupt, Duplicate: *duplicate, DelayRate: *delayRate, Delay: *delay},
		Workload:       scenario.Workload(*workload),
		SweepAxis:      axis,
		SweepPoints:    points,
		Attempts:       *attempts,
		Parallelism:    *parallelism,
		ChurnRounds:    *churnRounds,
		Adversaries:    parseAdversaries(*adversaries, *attackInt, *attackSeg, *attackStart),
	}
	if s.Name == "" {
		s.Name = *workload
		if axis != "" {
			s.Name += "-vs-" + string(axis)
		}
	}
	if err := s.Validate(); err != nil {
		return err
	}

	opts := scenario.Options{Workers: *workers}
	if *stream {
		if *checkInv {
			return fmt.Errorf("-stream and -check-invariance are mutually exclusive: the self-check compares materialized results (byte-compare a streamed run against a materialized one instead — that is what make stream-smoke gates)")
		}
		return runStreamed(s, opts, *jsonPath, *csvPath, *tracePath, *benchPath, stdout)
	}

	var res *scenario.Result
	var timing *scenario.Timing
	if *tracePath != "" {
		err = writeFile(*tracePath, func(f *os.File) error {
			var rerr error
			res, timing, rerr = scenario.RunTracedWith(s, f, opts)
			return rerr
		})
	} else {
		res, timing, err = scenario.RunWith(s, opts)
	}
	if err != nil {
		return err
	}
	printTiming(timing, len(res.Points))

	var serialWall time.Duration
	if *checkInv {
		if serialWall, err = checkInvariance(s, res, timing, stdout); err != nil {
			return err
		}
	}

	if *jsonPath == "" || *jsonPath == "-" {
		if err := scenario.WriteJSON(stdout, res); err != nil {
			return err
		}
	} else if err := writeFile(*jsonPath, func(f *os.File) error { return scenario.WriteJSON(f, res) }); err != nil {
		return err
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(f *os.File) error { return scenario.WriteCSV(f, res) }); err != nil {
			return err
		}
	}
	if *benchPath != "" {
		entry := &benchEntry{Result: res, WallClock: buildWallClock(timing, serialWall, true)}
		if err := appendBench(*benchPath, entry); err != nil {
			return err
		}
	}
	warnFailed(failedPoints(res), len(res.Points))
	return nil
}

// runStreamed is the -stream execution path: every requested output
// gets an incremental sink, completed points flush to them in index
// order as the sweep runs, and nothing materializes — the result never
// exists in memory as a whole. Output bytes are identical to the
// materialized path's.
func runStreamed(s scenario.Scenario, opts scenario.Options, jsonPath, csvPath, tracePath, benchPath string, stdout io.Writer) error {
	sum := &streamSummary{}
	sinks := []scenario.PointSink{sum}

	// Output files stay open for the whole run (sinks write them point
	// by point); close errors on the success path are real errors —
	// the last buffered bytes live there.
	var files []*os.File
	closeAll := func() error {
		var first error
		for _, f := range files {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		files = nil
		return first
	}
	defer closeAll()
	open := func(path string) (*os.File, error) {
		f, err := os.Create(path)
		if err == nil {
			files = append(files, f)
		}
		return f, err
	}

	if jsonPath == "" || jsonPath == "-" {
		sinks = append(sinks, scenario.NewJSONSink(stdout))
	} else {
		f, err := open(jsonPath)
		if err != nil {
			return err
		}
		sinks = append(sinks, scenario.NewJSONSink(f))
	}
	if csvPath != "" {
		f, err := open(csvPath)
		if err != nil {
			return err
		}
		sinks = append(sinks, scenario.NewCSVSink(f))
	}
	if tracePath != "" {
		f, err := open(tracePath)
		if err != nil {
			return err
		}
		sinks = append(sinks, scenario.NewTraceSink(f))
	}

	timing, err := scenario.RunStreamWith(s, sinks, opts)
	if err != nil {
		return err
	}
	if err := closeAll(); err != nil {
		return err
	}
	printTiming(timing, sum.points)

	if benchPath != "" {
		// A streamed bench entry records the header and the aggregate
		// stream block instead of the full point list ("points": null):
		// the heavy-traffic sweeps exist precisely because their point
		// lists are too big to commit.
		entry := &benchEntry{
			Result:    sum.headerResult(),
			WallClock: buildWallClock(timing, 0, false),
			Stream:    sum.block(),
		}
		if err := appendBench(benchPath, entry); err != nil {
			return err
		}
	}
	warnFailed(sum.failed, sum.points)
	return nil
}

// printTiming writes the run's wall-clock line to stderr: workers and
// wall time, plus the streaming engine's memory evidence (peak reorder
// depth, sampled heap high water) — populated on every run now that
// the materialized path is a collecting sink over the same engine.
func printTiming(timing *scenario.Timing, points int) {
	fmt.Fprintf(os.Stderr, "timing: workers=%d wall=%s max_in_flight=%d points=%d reorder_depth=%d heap_high_water=%.1fMB\n",
		timing.Workers, timing.WallClock.Round(time.Millisecond), timing.MaxInFlight, points,
		timing.MaxReorderDepth, float64(timing.HeapHighWater)/(1<<20))
}

// warnFailed reports surviving point-level failures on stderr without
// poisoning the structured output on stdout.
func warnFailed(failed, points int) {
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "scenario: %d of %d sweep points failed; each failure is recorded on its point in the result\n",
			failed, points)
	}
}

// failedPoints counts points that recorded a point-level failure.
func failedPoints(res *scenario.Result) int {
	n := 0
	for _, p := range res.Points {
		if p.Error != "" {
			n++
		}
	}
	return n
}

// checkInvariance re-runs the scenario fully serially — one sweep
// worker, EstablishAll parallelism 1 — and compares the two results
// byte-for-byte: with isolated per-point fabrics, content-keyed
// faults, private per-conversation randomness and fair-queuing
// gateway egress, a measured curve must be a function of the scenario
// definition alone, never of how the workers were scheduled. (On an
// already-serial run this degrades to a same-seed replay determinism
// check, which is still a meaningful gate.) It returns the serial
// reference's wall-clock time, which the bench trajectory records as
// the parallel run's speedup baseline.
func checkInvariance(s scenario.Scenario, res *scenario.Result, timing *scenario.Timing, stdout io.Writer) (time.Duration, error) {
	serial := s
	serial.Parallelism = 1
	ref, serialTiming, err := scenario.RunWith(serial, scenario.Options{Workers: 1})
	if err != nil {
		return 0, fmt.Errorf("invariance self-check rerun: %w", err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		return 0, err
	}
	want, err := json.Marshal(ref)
	if err != nil {
		return 0, err
	}
	if !bytes.Equal(got, want) {
		return 0, fmt.Errorf("schedule-invariance self-check FAILED: workers %d / parallelism %d diverged from the serial reference (%d vs %d bytes)",
			timing.Workers, s.Parallelism, len(got), len(want))
	}
	fmt.Fprintf(stdout, "invariance: workers %d / parallelism %d == serial reference (%d identical bytes)\n",
		timing.Workers, s.Parallelism, len(got))
	return serialTiming.WallClock, nil
}

// parseAdversaries decodes the -adversary comma list into configs,
// all sharing the flag-level intensity/segment/start knobs (scenarios
// needing per-adversary knobs are expressed in Go against the
// scenario package; the CLI covers the common one-attack case and the
// composite with uniform intensity). Unknown kinds pass through for
// Validate to reject with its richer error.
func parseAdversaries(spec string, intensity float64, segment int, start time.Duration) []scenario.AdversaryConfig {
	if spec == "" {
		return nil
	}
	var out []scenario.AdversaryConfig
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		out = append(out, scenario.AdversaryConfig{
			Kind:      scenario.AdversaryKind(tok),
			Segment:   segment,
			Intensity: intensity,
			Start:     start,
		})
	}
	return out
}

// parseSweep decodes "[axis:]p1,p2,...": an optional axis prefix
// (default drop) and a comma list of rates. A token "lo..hi/n"
// expands to n evenly spaced points from lo to hi inclusive — the
// heavy-traffic grid syntax ("drop:0..0.06/2048"); ranges and scalars
// mix freely in one list.
func parseSweep(spec string) (scenario.Axis, []float64, error) {
	if spec == "" {
		return "", nil, nil
	}
	axis := scenario.AxisDrop
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		axis = scenario.Axis(spec[:i])
		spec = spec[i+1:]
	}
	var points []float64
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if strings.Contains(tok, "..") {
			pts, err := parseRange(tok)
			if err != nil {
				return "", nil, err
			}
			points = append(points, pts...)
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return "", nil, fmt.Errorf("bad sweep point %q: %w", tok, err)
		}
		points = append(points, v)
	}
	return axis, points, nil
}

// parseRange expands one "lo..hi/n" sweep token.
func parseRange(tok string) ([]float64, error) {
	dots := strings.Index(tok, "..")
	slash := strings.LastIndexByte(tok, '/')
	if slash < dots {
		return nil, fmt.Errorf("bad sweep range %q: want lo..hi/n", tok)
	}
	lo, err := strconv.ParseFloat(tok[:dots], 64)
	if err != nil {
		return nil, fmt.Errorf("bad sweep range %q: %w", tok, err)
	}
	hi, err := strconv.ParseFloat(tok[dots+2:slash], 64)
	if err != nil {
		return nil, fmt.Errorf("bad sweep range %q: %w", tok, err)
	}
	n, err := strconv.Atoi(tok[slash+1:])
	if err != nil {
		return nil, fmt.Errorf("bad sweep range %q: %w", tok, err)
	}
	if n < 2 {
		return nil, fmt.Errorf("bad sweep range %q: need at least 2 points", tok)
	}
	pts := make([]float64, n)
	for i := range pts {
		pts[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return pts, nil
}

func writeFile(path string, emit func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchFile is the trajectory document committed as
// BENCH_scenarios.json: a self-describing header plus the accumulated
// scenario results.
type benchFile struct {
	Paper       string        `json:"paper"`
	Title       string        `json:"title"`
	Date        string        `json:"date"`
	Host        string        `json:"host"`
	Methodology string        `json:"methodology"`
	Scenarios   []*benchEntry `json:"scenarios"`
}

// benchEntry is one trajectory entry: the measurement (simulated time,
// host-independent) plus the wall clock the engine spent producing it
// (real time, the one host-dependent number — the multi-core speedup
// evidence). Streamed heavy-traffic entries carry a stream aggregate
// block and a null points list instead of the full curve — the point
// lists those sweeps produce are exactly what is too big to commit.
type benchEntry struct {
	*scenario.Result
	WallClock *wallClock   `json:"wall_clock,omitempty"`
	Stream    *streamBlock `json:"stream,omitempty"`
}

// wallClock records the engine's real execution cost for one entry.
type wallClock struct {
	// Workers is the sweep-point worker count of the run.
	Workers int `json:"workers"`
	// TotalMS is the wall-clock time of the whole sweep.
	TotalMS float64 `json:"total_ms"`
	// PointMS is each point's wall-clock time, index-aligned with
	// points; their sum exceeding total_ms means points overlapped.
	// Omitted on streamed entries (it is O(points) by definition).
	PointMS []float64 `json:"point_ms,omitempty"`
	// MaxInFlight is the peak number of points simulating
	// concurrently.
	MaxInFlight int `json:"max_in_flight"`
	// MaxReorderDepth is the peak number of completed points held by
	// the ordered emitter — the evidence that memory stayed
	// O(workers + slack) rather than O(points).
	MaxReorderDepth int `json:"max_reorder_depth"`
	// HeapHighWaterBytes is the highest sampled heap allocation during
	// the run (host- and GC-dependent, like everything in this block).
	HeapHighWaterBytes uint64 `json:"heap_high_water_bytes"`
	// SerialMS and SpeedupVsSerial are recorded when the run was
	// -check-invariance armed: the byte-identical serial reference's
	// wall clock, and total speedup over it.
	SerialMS        float64 `json:"serial_ms,omitempty"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// streamBlock is a streamed run's aggregate measurement: simulated-
// time totals over the whole sweep — host-independent, reproducible
// from the scenario definition like any curve, just folded instead of
// listed.
type streamBlock struct {
	Points         int     `json:"points"`
	Failed         int     `json:"failed"`
	Errors         int     `json:"errors"`
	Handshakes     int     `json:"handshakes"`
	Retries        int     `json:"retries"`
	Retransmits    int     `json:"retransmits"`
	SimTimeTotalUS float64 `json:"sim_time_total_us"`
	SimTimeMaxUS   float64 `json:"sim_time_max_us"`
}

// streamSummary is the CLI's always-on streaming sink: it folds every
// point into the aggregates the bench trajectory and the stderr
// diagnostics need, holding O(1) memory.
type streamSummary struct {
	header scenario.Header
	points int
	failed int
	block_ streamBlock
}

// Begin records the scenario header.
func (s *streamSummary) Begin(h scenario.Header) error {
	s.header = h
	return nil
}

// Point folds one point into the aggregates.
func (s *streamSummary) Point(i int, pt scenario.Point, _ []byte) error {
	s.points++
	if pt.Error != "" {
		s.failed++
	}
	s.block_.Errors += pt.Errors
	s.block_.Handshakes += pt.Handshakes
	s.block_.Retries += pt.Retries
	s.block_.Retransmits += pt.Retransmits
	s.block_.SimTimeTotalUS += pt.SimTimeUS
	if pt.SimTimeUS > s.block_.SimTimeMaxUS {
		s.block_.SimTimeMaxUS = pt.SimTimeUS
	}
	return nil
}

// End is a no-op; the aggregates are read by the caller.
func (s *streamSummary) End(scenario.Summary) error { return nil }

// headerResult rebuilds the scenario-level Result fields (points nil)
// for the bench entry.
func (s *streamSummary) headerResult() *scenario.Result {
	return &scenario.Result{
		SchemaVersion: s.header.SchemaVersion,
		Name:          s.header.Name,
		Workload:      s.header.Workload,
		Seed:          s.header.Seed,
		Peers:         s.header.Peers,
		Segments:      s.header.Segments,
		Axis:          s.header.Axis,
	}
}

// block returns the folded aggregates with the point counts filled in.
func (s *streamSummary) block() *streamBlock {
	b := s.block_
	b.Points = s.points
	b.Failed = s.failed
	return &b
}

// buildWallClock renders a Timing into the trajectory's wall_clock
// block; includePoints carries the per-point times (materialized runs
// only — the list is O(points)).
func buildWallClock(timing *scenario.Timing, serialWall time.Duration, includePoints bool) *wallClock {
	if timing == nil {
		return nil
	}
	ms := func(d time.Duration) float64 { return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000 }
	wc := &wallClock{
		Workers:            timing.Workers,
		TotalMS:            ms(timing.WallClock),
		MaxInFlight:        timing.MaxInFlight,
		MaxReorderDepth:    timing.MaxReorderDepth,
		HeapHighWaterBytes: timing.HeapHighWater,
	}
	if includePoints {
		for _, d := range timing.Points {
			wc.PointMS = append(wc.PointMS, ms(d))
		}
	}
	if serialWall > 0 && timing.WallClock > 0 {
		wc.SerialMS = ms(serialWall)
		wc.SpeedupVsSerial = math.Round(float64(serialWall)/float64(timing.WallClock)*100) / 100
	}
	return wc
}

// appendBench adds the entry to the trajectory file, replacing a
// previous entry with the same scenario name so re-runs update in
// place.
func appendBench(path string, entry *benchEntry) error {
	doc := benchFile{
		Paper: "conf_date_BasicSK23",
		Title: "Degraded-bus measurement scenarios (cmd/scenario)",
		Host:  fmt.Sprintf("%s/%s, %d CPU", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Methodology: "go run ./cmd/scenario — seeded, content-keyed fault injection on the " +
			"simulated multi-segment CAN fabric; all times are simulated (wire occupancy + " +
			"gateway store-and-forward + protocol timers), so curves are exactly reproducible " +
			"from the scenario definition and independent of host speed. wall_clock is the one " +
			"host-dependent block: the real time the engine spent, with sweep points fanned " +
			"out across -workers cores.",
	}
	// Only the accumulated scenarios survive from an existing file;
	// every header field describes this run and this tool version.
	if data, err := os.ReadFile(path); err == nil {
		var prev struct {
			Scenarios []*benchEntry `json:"scenarios"`
		}
		if err := json.Unmarshal(data, &prev); err != nil {
			return fmt.Errorf("existing %s unreadable: %w", path, err)
		}
		doc.Scenarios = prev.Scenarios
	}
	doc.Date = time.Now().UTC().Format("2006-01-02")
	kept := doc.Scenarios[:0]
	for _, r := range doc.Scenarios {
		if r.Name != entry.Name {
			kept = append(kept, r)
		}
	}
	doc.Scenarios = append(kept, entry)
	return writeFile(path, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}
