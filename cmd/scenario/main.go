// Command scenario runs declarative degraded-bus measurement
// scenarios over the simulated multi-segment CAN fabric and writes
// structured measurements: handshake-latency-vs-loss curves,
// per-Table-II-step retransmission and overhead accounting, fleet
// bring-up and churn costs. Every run is seeded and content-keyed, so
// a published curve is exactly reproducible from its command line.
//
// Examples:
//
//	# Latency-vs-loss curve, 8 peers across 3 segments, 0–10% loss,
//	# sweep points fanned out one per core (byte-identical to -workers 1):
//	scenario -peers 8 -sweep drop:0,0.02,0.04,0.06,0.08,0.10 \
//	         -workers 0 -json curve.json -csv curve.csv
//
//	# Fleet bring-up under churn behind a congested gateway:
//	scenario -workload churn -peers 8 -egress-rate 800 -json churn.json
//
//	# Victim-handshake latency vs babble rate, fair-queuing gateway
//	# isolating the victims:
//	scenario -workload attack -adversary babble -egress-rate 800 \
//	         -sweep attack:0,1000,4000,16000 -json babble.json
//
//	# Replay storm: record every handshake, re-inject it verbatim,
//	# assert zero accepted replays end-to-end:
//	scenario -workload attack -adversary replay -json replay.json
//
//	# Schema-drift gate (CI): re-validate an emitted file:
//	scenario -validate curve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/canbus"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: parse flags from args, execute, write
// human-facing output to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	var (
		name         = fs.String("name", "", "scenario name (defaults to workload-axis)")
		workload     = fs.String("workload", "latency", "workload: latency | bringup | churn | attack | day-in-the-life")
		peers        = fs.Int("peers", 8, "fleet size")
		segments     = fs.Int("segments", 3, "CAN segments in the gateway chain")
		seed         = fs.Uint64("seed", 42, "impairment and randomness seed")
		attempts     = fs.Int("attempts", 10, "per-handshake retry budget")
		parallelism  = fs.Int("parallelism", 1, "EstablishAll workers (bringup/churn)")
		churnRounds  = fs.Int("churn-rounds", 3, "drop/re-establish rounds (churn)")
		gwLatency    = fs.Duration("gateway-latency", 50*time.Microsecond, "store-and-forward latency per hop")
		egressRate   = fs.Float64("egress-rate", 0, "gateway egress rate limit in frames/s (0 = uncongested)")
		egressQueue  = fs.Int("egress-queue", 0, "gateway egress queue bound (0 = unbounded; needs -egress-rate)")
		egressShared = fs.Bool("egress-shared", false, "egress rate caps each port's aggregate throughput, divided fairly across flows (default: per conversation flow; needs -egress-rate)")
		workers      = fs.Int("workers", 1, "sweep points simulated concurrently, each on an isolated fabric (0 = one per core); JSON, CSV and trace output are byte-identical for any value")
		drop         = fs.Float64("drop", 0, "base frame drop rate [0,1]")
		corrupt      = fs.Float64("corrupt", 0, "base frame corruption rate [0,1]")
		duplicate    = fs.Float64("duplicate", 0, "base frame duplication rate [0,1]")
		delayRate    = fs.Float64("delay-rate", 0, "base frame delay rate [0,1]")
		delay        = fs.Duration("delay", 0, "extra latency per delayed frame (with -delay-rate)")
		sweep        = fs.String("sweep", "", "sweep spec: [axis:]p1,p2,... (axis: drop | corrupt | duplicate | attack)")
		adversaries  = fs.String("adversary", "", "comma list of adversaries for the attack workloads: replay | inject | babble | partition")
		attackInt    = fs.Float64("attack-intensity", 0, "adversary intensity (babble: frames/s; inject: forge probability [0,1]; partition: heal window in seconds; replay: session cap, 0 = all); an attack sweep overrides it per point")
		attackSeg    = fs.Int("attack-segment", -1, "bus segment the adversaries operate on (-1 = kind default: last segment, babble segment 0)")
		attackStart  = fs.Duration("attack-start", 0, "attack onset delay past the workload start (simulated; 0 = kind default)")
		jsonPath     = fs.String("json", "", "write the result JSON here ('-' or empty = stdout)")
		csvPath      = fs.String("csv", "", "also write the flattened curve CSV here")
		tracePath    = fs.String("trace", "", "also write the full fault/recovery trace here")
		benchPath    = fs.String("bench", "", "append the result to this benchmark trajectory file")
		validate     = fs.String("validate", "", "validate an emitted JSON file against the schema and exit")
		checkInv     = fs.Bool("check-invariance", false, "re-run the scenario serially (parallelism 1) and fail unless the results are byte-identical — the schedule-invariance self-check")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			return err
		}
		r, err := scenario.ValidateJSON(data)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: schema v%d ok — scenario %q, %d point(s)\n", *validate, r.SchemaVersion, r.Name, len(r.Points))
		return nil
	}

	if *workers < 0 {
		return fmt.Errorf("-workers must be ≥ 0 (0 = one worker per core), got %d", *workers)
	}
	axis, points, err := parseSweep(*sweep)
	if err != nil {
		return err
	}
	s := scenario.Scenario{
		Name:           *name,
		Seed:           *seed,
		Peers:          *peers,
		Segments:       *segments,
		GatewayLatency: *gwLatency,
		Egress:         canbus.EgressPolicy{Rate: *egressRate, Queue: *egressQueue, Shared: *egressShared},
		Profile:        scenario.Profile{Drop: *drop, Corrupt: *corrupt, Duplicate: *duplicate, DelayRate: *delayRate, Delay: *delay},
		Workload:       scenario.Workload(*workload),
		SweepAxis:      axis,
		SweepPoints:    points,
		Attempts:       *attempts,
		Parallelism:    *parallelism,
		ChurnRounds:    *churnRounds,
		Adversaries:    parseAdversaries(*adversaries, *attackInt, *attackSeg, *attackStart),
	}
	if s.Name == "" {
		s.Name = *workload
		if axis != "" {
			s.Name += "-vs-" + string(axis)
		}
	}
	if err := s.Validate(); err != nil {
		return err
	}

	opts := scenario.Options{Workers: *workers}
	var res *scenario.Result
	var timing *scenario.Timing
	if *tracePath != "" {
		err = writeFile(*tracePath, func(f *os.File) error {
			res, timing, err = scenario.RunTracedWith(s, f, opts)
			return err
		})
	} else {
		res, timing, err = scenario.RunWith(s, opts)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "timing: workers=%d wall=%s max_in_flight=%d points=%d\n",
		timing.Workers, timing.WallClock.Round(time.Millisecond), timing.MaxInFlight, len(res.Points))

	var serialWall time.Duration
	if *checkInv {
		if serialWall, err = checkInvariance(s, res, timing, stdout); err != nil {
			return err
		}
	}

	if *jsonPath == "" || *jsonPath == "-" {
		if err := scenario.WriteJSON(stdout, res); err != nil {
			return err
		}
	} else if err := writeFile(*jsonPath, func(f *os.File) error { return scenario.WriteJSON(f, res) }); err != nil {
		return err
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(f *os.File) error { return scenario.WriteCSV(f, res) }); err != nil {
			return err
		}
	}
	if *benchPath != "" {
		if err := appendBench(*benchPath, res, timing, serialWall); err != nil {
			return err
		}
	}
	if failed := failedPoints(res); failed > 0 {
		// The sweep survives pathological points by design; say so
		// loudly without poisoning the structured output on stdout.
		fmt.Fprintf(os.Stderr, "scenario: %d of %d sweep points failed; each failure is recorded on its point in the result\n",
			failed, len(res.Points))
	}
	return nil
}

// failedPoints counts points that recorded a point-level failure.
func failedPoints(res *scenario.Result) int {
	n := 0
	for _, p := range res.Points {
		if p.Error != "" {
			n++
		}
	}
	return n
}

// checkInvariance re-runs the scenario fully serially — one sweep
// worker, EstablishAll parallelism 1 — and compares the two results
// byte-for-byte: with isolated per-point fabrics, content-keyed
// faults, private per-conversation randomness and fair-queuing
// gateway egress, a measured curve must be a function of the scenario
// definition alone, never of how the workers were scheduled. (On an
// already-serial run this degrades to a same-seed replay determinism
// check, which is still a meaningful gate.) It returns the serial
// reference's wall-clock time, which the bench trajectory records as
// the parallel run's speedup baseline.
func checkInvariance(s scenario.Scenario, res *scenario.Result, timing *scenario.Timing, stdout io.Writer) (time.Duration, error) {
	serial := s
	serial.Parallelism = 1
	ref, serialTiming, err := scenario.RunWith(serial, scenario.Options{Workers: 1})
	if err != nil {
		return 0, fmt.Errorf("invariance self-check rerun: %w", err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		return 0, err
	}
	want, err := json.Marshal(ref)
	if err != nil {
		return 0, err
	}
	if !bytes.Equal(got, want) {
		return 0, fmt.Errorf("schedule-invariance self-check FAILED: workers %d / parallelism %d diverged from the serial reference (%d vs %d bytes)",
			timing.Workers, s.Parallelism, len(got), len(want))
	}
	fmt.Fprintf(stdout, "invariance: workers %d / parallelism %d == serial reference (%d identical bytes)\n",
		timing.Workers, s.Parallelism, len(got))
	return serialTiming.WallClock, nil
}

// parseAdversaries decodes the -adversary comma list into configs,
// all sharing the flag-level intensity/segment/start knobs (scenarios
// needing per-adversary knobs are expressed in Go against the
// scenario package; the CLI covers the common one-attack case and the
// composite with uniform intensity). Unknown kinds pass through for
// Validate to reject with its richer error.
func parseAdversaries(spec string, intensity float64, segment int, start time.Duration) []scenario.AdversaryConfig {
	if spec == "" {
		return nil
	}
	var out []scenario.AdversaryConfig
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		out = append(out, scenario.AdversaryConfig{
			Kind:      scenario.AdversaryKind(tok),
			Segment:   segment,
			Intensity: intensity,
			Start:     start,
		})
	}
	return out
}

// parseSweep decodes "[axis:]p1,p2,...": an optional axis prefix
// (default drop) and a comma list of rates.
func parseSweep(spec string) (scenario.Axis, []float64, error) {
	if spec == "" {
		return "", nil, nil
	}
	axis := scenario.AxisDrop
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		axis = scenario.Axis(spec[:i])
		spec = spec[i+1:]
	}
	var points []float64
	for _, tok := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return "", nil, fmt.Errorf("bad sweep point %q: %w", tok, err)
		}
		points = append(points, v)
	}
	return axis, points, nil
}

func writeFile(path string, emit func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchFile is the trajectory document committed as
// BENCH_scenarios.json: a self-describing header plus the accumulated
// scenario results.
type benchFile struct {
	Paper       string        `json:"paper"`
	Title       string        `json:"title"`
	Date        string        `json:"date"`
	Host        string        `json:"host"`
	Methodology string        `json:"methodology"`
	Scenarios   []*benchEntry `json:"scenarios"`
}

// benchEntry is one trajectory entry: the measurement (simulated time,
// host-independent) plus the wall clock the engine spent producing it
// (real time, the one host-dependent number — the multi-core speedup
// evidence).
type benchEntry struct {
	*scenario.Result
	WallClock *wallClock `json:"wall_clock,omitempty"`
}

// wallClock records the engine's real execution cost for one entry.
type wallClock struct {
	// Workers is the sweep-point worker count of the run.
	Workers int `json:"workers"`
	// TotalMS is the wall-clock time of the whole sweep.
	TotalMS float64 `json:"total_ms"`
	// PointMS is each point's wall-clock time, index-aligned with
	// points; their sum exceeding total_ms means points overlapped.
	PointMS []float64 `json:"point_ms"`
	// MaxInFlight is the peak number of points simulating
	// concurrently.
	MaxInFlight int `json:"max_in_flight"`
	// SerialMS and SpeedupVsSerial are recorded when the run was
	// -check-invariance armed: the byte-identical serial reference's
	// wall clock, and total speedup over it.
	SerialMS        float64 `json:"serial_ms,omitempty"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// appendBench adds the result to the trajectory file, replacing a
// previous entry with the same scenario name so re-runs update in
// place.
func appendBench(path string, res *scenario.Result, timing *scenario.Timing, serialWall time.Duration) error {
	doc := benchFile{
		Paper: "conf_date_BasicSK23",
		Title: "Degraded-bus measurement scenarios (cmd/scenario)",
		Host:  fmt.Sprintf("%s/%s, %d CPU", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Methodology: "go run ./cmd/scenario — seeded, content-keyed fault injection on the " +
			"simulated multi-segment CAN fabric; all times are simulated (wire occupancy + " +
			"gateway store-and-forward + protocol timers), so curves are exactly reproducible " +
			"from the scenario definition and independent of host speed. wall_clock is the one " +
			"host-dependent block: the real time the engine spent, with sweep points fanned " +
			"out across -workers cores.",
	}
	// Only the accumulated scenarios survive from an existing file;
	// every header field describes this run and this tool version.
	if data, err := os.ReadFile(path); err == nil {
		var prev struct {
			Scenarios []*benchEntry `json:"scenarios"`
		}
		if err := json.Unmarshal(data, &prev); err != nil {
			return fmt.Errorf("existing %s unreadable: %w", path, err)
		}
		doc.Scenarios = prev.Scenarios
	}
	doc.Date = time.Now().UTC().Format("2006-01-02")
	kept := doc.Scenarios[:0]
	for _, r := range doc.Scenarios {
		if r.Name != res.Name {
			kept = append(kept, r)
		}
	}
	entry := &benchEntry{Result: res}
	if timing != nil {
		ms := func(d time.Duration) float64 { return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000 }
		wc := &wallClock{
			Workers:     timing.Workers,
			TotalMS:     ms(timing.WallClock),
			MaxInFlight: timing.MaxInFlight,
		}
		for _, d := range timing.Points {
			wc.PointMS = append(wc.PointMS, ms(d))
		}
		if serialWall > 0 && timing.WallClock > 0 {
			wc.SerialMS = ms(serialWall)
			wc.SpeedupVsSerial = math.Round(float64(serialWall)/float64(timing.WallClock)*100) / 100
		}
		entry.WallClock = wc
	}
	doc.Scenarios = append(kept, entry)
	return writeFile(path, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}
