package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func TestCLIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "curve.json")
	csvPath := filepath.Join(dir, "curve.csv")
	tracePath := filepath.Join(dir, "trace.txt")
	benchPath := filepath.Join(dir, "bench.json")

	var out bytes.Buffer
	err := run([]string{
		"-name", "cli-test", "-peers", "2", "-segments", "2", "-seed", "7",
		"-sweep", "drop:0,0.05",
		"-json", jsonPath, "-csv", csvPath, "-trace", tracePath, "-bench", benchPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.ValidateJSON(data)
	if err != nil {
		t.Fatalf("emitted JSON fails the schema gate: %v", err)
	}
	if res.Name != "cli-test" || len(res.Points) != 2 {
		t.Fatalf("unexpected result: %+v", res)
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(string(csv)), "\n"); lines != 2 {
		t.Errorf("CSV has %d data lines, want 2", lines)
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), "summary errors=0") {
		t.Error("trace missing point summary")
	}

	// The validate mode accepts its own output.
	out.Reset()
	if err := run([]string{"-validate", jsonPath}, &out); err != nil {
		t.Fatalf("-validate rejected fresh output: %v", err)
	}
	if !strings.Contains(out.String(), "schema v4 ok") {
		t.Errorf("validate output: %q", out.String())
	}

	// Re-running with the same name replaces the bench entry in place.
	if err := run([]string{
		"-name", "cli-test", "-peers", "2", "-segments", "2", "-seed", "7",
		"-json", jsonPath, "-bench", benchPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Scenarios) != 1 || doc.Scenarios[0].Name != "cli-test" {
		t.Fatalf("bench trajectory wrong: %d entries", len(doc.Scenarios))
	}
	if doc.Paper == "" || doc.Methodology == "" {
		t.Error("bench header incomplete")
	}
}

func TestCLIJSONToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-name", "stdout-test", "-peers", "1", "-segments", "1", "-workload", "bringup"}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.ValidateJSON(out.Bytes()); err != nil {
		t.Fatalf("stdout JSON invalid: %v", err)
	}
}

func TestCLIDelayProfile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-name", "delay-test", "-peers", "1", "-segments", "1",
		"-delay-rate", "1", "-delay", "1ms",
	}, &out); err != nil {
		t.Fatal(err)
	}
	res, err := scenario.ValidateJSON(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Points[0]; p.Errors != 0 || p.BusDelayed == 0 {
		t.Fatalf("delay profile did not delay frames: %+v", p)
	}
}

func TestCLIErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-peers", "0"},                      // invalid scenario
		{"-workload", "warp", "-peers", "2"}, // unknown workload
		{"-sweep", "drop:zero"},              // bad sweep point
		{"-validate", "/nonexistent/x.json"}, // unreadable file
		// The one remaining non-reproducible combination: duplication
		// through a rate-limited egress port at parallelism > 1.
		{"-peers", "2", "-workload", "bringup", "-parallelism", "4", "-egress-rate", "100", "-duplicate", "0.05"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v succeeded", args)
		}
	}
}

// TestCLICheckInvariance runs a congested concurrent bring-up — the
// configuration that could not exist before the fair-queuing egress
// scheduler — with the schedule-invariance self-check armed: the CLI
// re-runs it serially and fails on any byte of divergence.
func TestCLICheckInvariance(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-name", "inv-test", "-peers", "3", "-segments", "3", "-seed", "9",
		"-workload", "bringup", "-parallelism", "4",
		"-egress-rate", "600", "-egress-queue", "64", "-drop", "0.02",
		"-check-invariance",
	}, &out); err != nil {
		t.Fatalf("invariance self-check failed: %v", err)
	}
	if !strings.Contains(out.String(), "invariance: workers 1 / parallelism 4 == serial reference") {
		t.Errorf("missing self-check confirmation in output: %q", out.String())
	}
	// The confirmation precedes the JSON on stdout; the JSON itself
	// must still validate.
	idx := strings.Index(out.String(), "{")
	if idx < 0 {
		t.Fatal("no JSON on stdout")
	}
	if _, err := scenario.ValidateJSON(out.Bytes()[idx:]); err != nil {
		t.Fatalf("stdout JSON invalid: %v", err)
	}
}

// TestCLIWorkersFlag pins the -workers edge cases: 0 means one worker
// per core, any positive count is accepted and byte-identical to
// serial, negative is a flag error before anything runs.
func TestCLIWorkersFlag(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-name", "workers-test", "-peers", "2", "-segments", "2", "-seed", "11",
		"-sweep", "drop:0,0.02,0.04,0.06",
	}
	outputs := map[string][]byte{}
	for _, w := range []string{"1", "8", "0"} {
		jsonPath := filepath.Join(dir, "w"+w+".json")
		csvPath := filepath.Join(dir, "w"+w+".csv")
		tracePath := filepath.Join(dir, "w"+w+".trace")
		var out bytes.Buffer
		args := append(append([]string{}, base...),
			"-workers", w, "-json", jsonPath, "-csv", csvPath, "-trace", tracePath)
		if err := run(args, &out); err != nil {
			t.Fatalf("-workers %s failed: %v", w, err)
		}
		for _, p := range []string{jsonPath, csvPath, tracePath} {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			outputs["w"+w+filepath.Ext(p)] = data
		}
	}
	for _, ext := range []string{".json", ".csv", ".trace"} {
		if !bytes.Equal(outputs["w1"+ext], outputs["w8"+ext]) {
			t.Errorf("-workers 8 changed the %s output", ext)
		}
		if !bytes.Equal(outputs["w1"+ext], outputs["w0"+ext]) {
			t.Errorf("-workers 0 (auto) changed the %s output", ext)
		}
	}

	var out bytes.Buffer
	if err := run(append(append([]string{}, base...), "-workers", "-3"), &out); err == nil {
		t.Error("negative -workers accepted")
	} else if !strings.Contains(err.Error(), "-workers") {
		t.Errorf("negative -workers error unhelpful: %v", err)
	}
}

// TestCLICheckInvarianceWithWorkers: the self-check must hold when the
// sweep itself is parallel — the serial reference is workers 1 AND
// parallelism 1.
func TestCLICheckInvarianceWithWorkers(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-name", "inv-workers", "-peers", "2", "-segments", "2", "-seed", "5",
		"-sweep", "drop:0,0.02,0.04,0.06", "-workers", "4",
		"-check-invariance",
	}, &out); err != nil {
		t.Fatalf("invariance self-check at -workers 4 failed: %v", err)
	}
	if !strings.Contains(out.String(), "invariance: workers 4 / parallelism 1 == serial reference") {
		t.Errorf("missing self-check confirmation: %q", out.String())
	}
}

// TestCLIDuplicateSweepPoints: a sweep spec naming the same value
// twice measures two index-aligned, identical points — never a silent
// dedup, never an error.
func TestCLIDuplicateSweepPoints(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-name", "dup-test", "-peers", "2", "-segments", "2",
		"-sweep", "drop:0.03,0.03", "-workers", "2",
	}, &out); err != nil {
		t.Fatal(err)
	}
	res, err := scenario.ValidateJSON(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].Value != 0.03 || res.Points[1].Value != 0.03 {
		t.Fatalf("duplicate sweep points mishandled: %+v", res.Points)
	}
	a, _ := json.Marshal(res.Points[0])
	b, _ := json.Marshal(res.Points[1])
	if !bytes.Equal(a, b) {
		t.Fatalf("identical sweep values measured differently:\n%s\n%s", a, b)
	}
}

// TestCLIBenchWallClock: the bench trajectory records the wall-clock
// block — workers, per-point times, peak concurrency, and (when
// -check-invariance armed the serial rerun) the speedup baseline.
func TestCLIBenchWallClock(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.json")
	var out bytes.Buffer
	if err := run([]string{
		"-name", "wall-test", "-peers", "2", "-segments", "2", "-seed", "3",
		"-sweep", "drop:0,0.02,0.04,0.06", "-workers", "4", "-check-invariance",
		"-json", filepath.Join(dir, "out.json"), "-bench", benchPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Scenarios) != 1 {
		t.Fatalf("bench trajectory has %d entries", len(doc.Scenarios))
	}
	wc := doc.Scenarios[0].WallClock
	if wc == nil {
		t.Fatal("bench entry has no wall_clock block")
	}
	if wc.Workers != 4 || wc.TotalMS <= 0 || len(wc.PointMS) != 4 || wc.MaxInFlight < 1 {
		t.Fatalf("wall clock implausible: %+v", wc)
	}
	if wc.SerialMS <= 0 || wc.SpeedupVsSerial <= 0 {
		t.Fatalf("-check-invariance run recorded no serial baseline: %+v", wc)
	}
}

func TestParseSweep(t *testing.T) {
	axis, pts, err := parseSweep("corrupt:0,0.01,0.02")
	if err != nil || axis != scenario.AxisCorrupt || len(pts) != 3 {
		t.Fatalf("got %v %v %v", axis, pts, err)
	}
	axis, pts, err = parseSweep("0.1,0.2")
	if err != nil || axis != scenario.AxisDrop || len(pts) != 2 {
		t.Fatalf("default axis: %v %v %v", axis, pts, err)
	}
	if _, _, err := parseSweep("drop:a,b"); err == nil {
		t.Error("bad points accepted")
	}
	if axis, pts, err := parseSweep(""); axis != "" || pts != nil || err != nil {
		t.Error("empty spec must be a no-op")
	}
}

// TestCLIAttackWorkload drives the replay adversary end-to-end through
// the CLI, then feeds the emitted curve back through -validate — the
// same loop the CI adversarial-smoke leg runs.
func TestCLIAttackWorkload(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "attack.json")
	csvPath := filepath.Join(dir, "attack.csv")

	var out bytes.Buffer
	if err := run([]string{
		"-name", "cli-attack", "-peers", "2", "-segments", "2", "-seed", "13",
		"-workload", "attack", "-adversary", "replay,inject", "-attack-intensity", "0.4",
		"-json", jsonPath, "-csv", csvPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.ValidateJSON(data)
	if err != nil {
		t.Fatalf("attack JSON fails the schema gate: %v", err)
	}
	if len(res.Points) != 1 || len(res.Points[0].Attacks) != 2 {
		t.Fatalf("attack accounting missing: %+v", res.Points)
	}
	for _, a := range res.Points[0].Attacks {
		if a.AcceptedReplays != 0 {
			t.Fatalf("SECURITY: CLI run accepted %d replays", a.AcceptedReplays)
		}
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Split(string(csv), "\n")[0], "accepted_replays") {
		t.Error("CSV header missing attack columns")
	}

	out.Reset()
	if err := run([]string{"-validate", jsonPath}, &out); err != nil {
		t.Fatalf("-validate rejected the attack curve: %v", err)
	}

	// The invariance self-check must hold for attack workloads too.
	if err := run([]string{
		"-name", "cli-attack-inv", "-peers", "2", "-segments", "2", "-seed", "13",
		"-workload", "attack", "-adversary", "babble", "-attack-intensity", "2000",
		"-egress-rate", "800", "-egress-queue", "64",
		"-sweep", "attack:0,2000", "-check-invariance",
	}, &out); err != nil {
		t.Fatalf("attack invariance self-check failed: %v", err)
	}
}

// TestCLIAttackErrors: adversary misuse fails loudly at validation.
func TestCLIAttackErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-workload", "attack", "-peers", "2"},                                                   // attack without adversaries
		{"-workload", "attack", "-adversary", "ghost", "-peers", "2"},                            // unknown kind
		{"-workload", "latency", "-adversary", "replay", "-peers", "2"},                          // adversary on benign workload
		{"-workload", "attack", "-adversary", "inject", "-attack-intensity", "2", "-peers", "2"}, // probability out of range
		{"-workload", "attack", "-adversary", "partition", "-segments", "1", "-peers", "2"},      // partition needs a gateway
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v succeeded", args)
		}
	}
}

func TestParseAdversaries(t *testing.T) {
	if got := parseAdversaries("", 0, -1, 0); got != nil {
		t.Errorf("empty spec returned %v", got)
	}
	got := parseAdversaries(" replay, babble ", 4000, 1, 0)
	if len(got) != 2 || got[0].Kind != scenario.AdversaryReplay || got[1].Kind != scenario.AdversaryBabble {
		t.Fatalf("parsed %+v", got)
	}
	for _, cfg := range got {
		if cfg.Intensity != 4000 || cfg.Segment != 1 {
			t.Errorf("shared knobs not applied: %+v", cfg)
		}
	}
}

// TestCLIStream drives the -stream path end-to-end and byte-compares
// every output against a materialized run of the same scenario — the
// in-process version of the make stream-smoke gate.
func TestCLIStream(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-name", "stream-test", "-peers", "2", "-segments", "2", "-seed", "9",
		"-corrupt", "0.005", "-sweep", "drop:0..0.05/12", "-workers", "8",
	}
	sArgs := append(append([]string{}, args...),
		"-stream",
		"-json", filepath.Join(dir, "s.json"), "-csv", filepath.Join(dir, "s.csv"), "-trace", filepath.Join(dir, "s.trace"))
	mArgs := append(append([]string{}, args...),
		"-workers", "1", // later flag wins: materialized reference runs serial
		"-json", filepath.Join(dir, "m.json"), "-csv", filepath.Join(dir, "m.csv"), "-trace", filepath.Join(dir, "m.trace"))

	var out bytes.Buffer
	if err := run(sArgs, &out); err != nil {
		t.Fatal(err)
	}
	if err := run(mArgs, &out); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{"json", "csv", "trace"} {
		s, err := os.ReadFile(filepath.Join(dir, "s."+ext))
		if err != nil {
			t.Fatal(err)
		}
		m, err := os.ReadFile(filepath.Join(dir, "m."+ext))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s, m) {
			t.Errorf("streamed %s diverged from materialized (%d vs %d bytes)", ext, len(s), len(m))
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "s.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.ValidateJSON(data)
	if err != nil {
		t.Fatalf("streamed JSON fails the schema gate: %v", err)
	}
	if len(res.Points) != 12 {
		t.Fatalf("range sweep produced %d points, want 12", len(res.Points))
	}
}

// TestCLIStreamToStdout: the default -json destination (stdout) works
// streamed too, and the document validates.
func TestCLIStreamToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-name", "stream-stdout", "-peers", "2", "-segments", "1", "-seed", "5",
		"-sweep", "drop:0,0.02", "-stream",
	}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.ValidateJSON(out.Bytes()); err != nil {
		t.Fatalf("streamed stdout JSON fails the schema gate: %v", err)
	}
}

// TestCLIStreamBench: a streamed bench entry records the header, the
// aggregate stream block and a wall_clock with the memory evidence —
// and no per-point list in either (points null, point_ms omitted).
func TestCLIStreamBench(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.json")
	var out bytes.Buffer
	if err := run([]string{
		"-name", "stream-bench", "-peers", "2", "-segments", "2", "-seed", "3",
		"-sweep", "drop:0..0.04/16", "-workers", "4", "-stream",
		"-json", filepath.Join(dir, "out.json"), "-bench", benchPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Scenarios) != 1 {
		t.Fatalf("bench trajectory has %d entries", len(doc.Scenarios))
	}
	e := doc.Scenarios[0]
	if e.Name != "stream-bench" || e.Points != nil {
		t.Fatalf("streamed entry must carry the header and a null point list: %+v", e.Result)
	}
	if e.Stream == nil || e.Stream.Points != 16 || e.Stream.Handshakes == 0 || e.Stream.SimTimeTotalUS <= 0 {
		t.Fatalf("stream block implausible: %+v", e.Stream)
	}
	wc := e.WallClock
	if wc == nil || wc.Workers != 4 || wc.PointMS != nil {
		t.Fatalf("streamed wall_clock must omit point_ms: %+v", wc)
	}
	if wc.MaxReorderDepth < 1 || wc.MaxReorderDepth > 4+scenario.ReorderSlack {
		t.Fatalf("reorder depth %d outside (0, workers+slack]", wc.MaxReorderDepth)
	}
	if wc.HeapHighWaterBytes == 0 {
		t.Fatal("no heap high-water evidence recorded")
	}
}

// TestCLIStreamRejectsCheckInvariance: the self-check needs the
// materialized result, so the combination is refused loudly.
func TestCLIStreamRejectsCheckInvariance(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-peers", "2", "-stream", "-check-invariance"}, &out)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-stream -check-invariance accepted: %v", err)
	}
}

// TestParseSweepRange pins the lo..hi/n expansion.
func TestParseSweepRange(t *testing.T) {
	axis, pts, err := parseSweep("drop:0..0.06/4")
	if err != nil || axis != scenario.AxisDrop {
		t.Fatalf("range spec rejected: %v %v", axis, err)
	}
	want := []float64{0, 0.02, 0.04, 0.06}
	if len(pts) != len(want) {
		t.Fatalf("got %v, want %v", pts, want)
	}
	for i := range want {
		if diff := pts[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("point %d: got %v, want %v", i, pts[i], want[i])
		}
	}
	// Ranges and scalars mix; the endpoints land exactly.
	_, pts, err = parseSweep("corrupt:0.001,0..1/2,0.5")
	if err != nil || len(pts) != 4 || pts[1] != 0 || pts[2] != 1 {
		t.Fatalf("mixed spec: %v %v", pts, err)
	}
	for _, bad := range []string{"drop:0..0.06", "drop:0..0.06/1", "drop:0..0.06/x", "drop:..1/4", "drop:0../4"} {
		if _, _, err := parseSweep(bad); err == nil {
			t.Errorf("bad range %q accepted", bad)
		}
	}
}
