// Command doccheck enforces the repo's godoc contract on the packages
// it is pointed at: every package has a package comment and every
// exported top-level declaration — type, function, method, var or
// const group — carries a doc comment. The deterministic-simulation
// packages (scenario, canbus, security, transport) lean on doc
// comments to state determinism obligations, so a missing comment
// there is a missing contract, not a style nit. It is a small
// go/ast walk rather than a staticcheck dependency so `make lint`
// works on a bare toolchain.
//
// Usage:
//
//	go run ./cmd/doccheck ./internal/scenario ./internal/canbus ...
//
// Exits non-zero listing every violation as file:line: symbol.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir>...")
		os.Exit(2)
	}
	var violations []string
	for _, dir := range os.Args[1:] {
		v, err := checkDir(strings.TrimPrefix(dir, "./"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Println(v)
		}
		fmt.Printf("doccheck: %d undocumented exported declarations\n", len(violations))
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded — test
// helpers document themselves through their assertions) and returns
// its violations.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		files := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			files = append(files, name)
		}
		sort.Strings(files)
		for _, name := range files {
			f := pkg.Files[name]
			if f.Doc != nil {
				hasPkgDoc = true
			}
			out = append(out, checkFile(fset, f)...)
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", filepath.Join(dir, files[0]), pkg.Name))
		}
	}
	return out, nil
}

// checkFile reports every exported declaration in one file that lacks
// a doc comment.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s has no doc comment", p.Filename, p.Line, what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				if rn := receiverType(d.Recv.List[0].Type); rn != "" {
					if !ast.IsExported(rn) {
						continue // methods on unexported types are internal
					}
					name = rn + "." + name
				}
			}
			report(d.Pos(), "func "+name)
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						// A group comment on the decl or a spec comment
						// both satisfy the contract (idiomatic for const
						// blocks with a shared story).
						if n.IsExported() && d.Doc == nil && s.Doc == nil {
							report(n.Pos(), strings.ToLower(d.Tok.String())+" "+n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverType unwraps a method receiver expression to its type name.
func receiverType(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return receiverType(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return receiverType(t.X)
	}
	return ""
}
