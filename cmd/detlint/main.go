// Command detlint runs the repo's contract analyzers — the detcheck
// suite — over the packages named on the command line, printing every
// finding as file:line:col: check: message and exiting 1 when any
// survive suppression. It is the static-enforcement half of the
// determinism contract: the byte-compare CI gates prove the contracts
// hold on the paths the scenarios drive, detlint proves no code path
// exists that could break them.
//
// Usage:
//
//	go run ./cmd/detlint ./...
//	go run ./cmd/detlint -help
//
// Suppressions are per-line annotations with a mandatory reason:
//
//	//detlint:allow <check> <reason>
//
// covering the annotation's own line and the line below. Malformed
// and unused annotations are findings themselves, so the escape set
// stays exactly as large as the documented exceptions.
//
// Like cmd/doccheck and cmd/linkcheck, detlint is pure standard
// library (go/ast + go/types with the source importer): it needs no
// installed tools, no module proxy and no network, so `make lint`
// works on a bare toolchain.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/detcheck"
)

func main() {
	help := flag.Bool("help", false, "describe the checks and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: detlint [-help] <package-pattern>...")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := detcheck.Analyzers()
	if *help {
		for _, a := range analyzers {
			fmt.Printf("%s\n\t%s\n\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	pkgs, err := analysis.Load(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Printf("detlint: %d findings\n", len(findings))
		os.Exit(1)
	}
}
