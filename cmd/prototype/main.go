// Command prototype regenerates Figure 7 of the paper: the timeline of
// a secure session establishment between a BMS controller and an EVCC
// (both S32K144-class devices) over CAN-FD with ISO-TP fragmentation,
// comparing the proposed STS against the static ECDSA baseline.
//
// Usage:
//
//	prototype            # full timelines + summary
//	prototype -summary   # totals only
//	prototype -device STM32F767
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/hwmodel"
	"repro/internal/prototype"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prototype: ")
	summary := flag.Bool("summary", false, "print totals only")
	device := flag.String("device", "S32K144", "device model for both ECUs")
	flag.Parse()

	model, err := hwmodel.New()
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := prototype.Compare(model, *device)
	if err != nil {
		log.Fatal(err)
	}

	if !*summary {
		printTimeline(cmp.STS, "(A) STS ECQV KD protocol")
		printTimeline(cmp.SECDSA, "(B) S-ECDSA ECQV KD protocol")
	}

	report.Section(os.Stdout, "Figure 7 summary — BMS ↔ EVCC prototype session")
	t := &report.Table{Header: []string{"Protocol", "Processing", "CAN-FD wire", "Total", "Frames"}}
	for _, tl := range []*prototype.Timeline{cmp.STS, cmp.SECDSA} {
		t.AddRow(
			tl.Protocol,
			fmt.Sprintf("%.3f s", tl.Processing.Seconds()),
			fmt.Sprintf("%.3f ms", float64(tl.Wire.Microseconds())/1000),
			fmt.Sprintf("%.3f s", tl.Total.Seconds()),
			fmt.Sprintf("%d", tl.BusStats.Frames),
		)
	}
	t.Render(os.Stdout)
	fmt.Printf("\n  STS increase over S-ECDSA: %.2f %% (paper: 21.67 %% — 3.257 s vs 2.677 s)\n", cmp.IncreasePct)
	fmt.Println("  CAN-FD transfer share is negligible (< 1 ms per message), as in the paper.")
}

func printTimeline(tl *prototype.Timeline, title string) {
	report.Section(os.Stdout, title)
	t := &report.Table{Header: []string{"Actor", "Segment", "Duration"}}
	for _, seg := range tl.Segments {
		dur := fmt.Sprintf("%.3f ms", float64(seg.Duration.Microseconds())/1000)
		t.AddRow(seg.Device, seg.Label, dur)
	}
	t.Render(os.Stdout)
}
