// Command ecqvtool is a certificate-lifecycle utility for the ECQV
// implicit-certificate scheme: create a CA, issue device certificates,
// inspect them, and extract their implicit public keys.
//
// Key and certificate files are hex-encoded single-line files (this is
// a research tool; production deployments would use an HSM-backed
// store).
//
// Usage:
//
//	ecqvtool ca -out ca.hex [-id my-ca] [-curve secp256r1]
//	ecqvtool issue -ca ca.hex -subject device-1 -out device-1
//	ecqvtool inspect -cert device-1.cert
//	ecqvtool pubkey -ca ca.hex -cert device-1.cert
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"math/big"
	"os"
	"strings"
	"time"

	"repro/internal/ec"
	"repro/internal/ecdsa"
	"repro/internal/ecqv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ecqvtool: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "ca":
		cmdCA(os.Args[2:])
	case "issue":
		cmdIssue(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "pubkey":
		cmdPubkey(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ecqvtool {ca|issue|inspect|pubkey} [flags]")
	os.Exit(2)
}

// caFile is the persisted CA state: curve, id, private scalar (hex),
// next serial — one token per line.
func writeCAFile(path string, ca *ecqv.CA) error {
	content := fmt.Sprintf("%s\n%s\n%s\n%d\n",
		ca.Curve.Name, ca.ID, hex.EncodeToString(ca.Curve.ScalarToBytes(ca.PrivateKey())), ca.NextSerial())
	return os.WriteFile(path, []byte(content), 0o600)
}

func readCAFile(path string) (*ecqv.CA, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 4 {
		return nil, fmt.Errorf("malformed CA file %s", path)
	}
	curve, err := ec.CurveByName(lines[0])
	if err != nil {
		return nil, err
	}
	keyBytes, err := hex.DecodeString(lines[2])
	if err != nil {
		return nil, fmt.Errorf("CA key: %w", err)
	}
	var serial uint64
	if _, err := fmt.Sscanf(lines[3], "%d", &serial); err != nil {
		return nil, fmt.Errorf("CA serial: %w", err)
	}
	return ecqv.NewCAFromKey(curve, ecqv.NewID(lines[1]), new(big.Int).SetBytes(keyBytes), serial, nil)
}

func cmdCA(args []string) {
	fs := flag.NewFlagSet("ca", flag.ExitOnError)
	out := fs.String("out", "ca.hex", "CA state file to create")
	id := fs.String("id", "central-authority", "CA identity")
	curveName := fs.String("curve", "secp256r1", "elliptic curve")
	fs.Parse(args)

	curve, err := ec.CurveByName(*curveName)
	if err != nil {
		log.Fatal(err)
	}
	ca, err := ecqv.NewCA(curve, ecqv.NewID(*id), nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeCAFile(*out, ca); err != nil {
		log.Fatal(err)
	}
	pub := curve.EncodeCompressed(ca.PublicKey())
	fmt.Printf("created CA %q on %s\n  state:      %s\n  public key: %s\n",
		*id, curve.Name, *out, hex.EncodeToString(pub))
}

func cmdIssue(args []string) {
	fs := flag.NewFlagSet("issue", flag.ExitOnError)
	caPath := fs.String("ca", "ca.hex", "CA state file")
	subject := fs.String("subject", "", "subject identity (required)")
	out := fs.String("out", "", "output prefix (default: subject name)")
	days := fs.Int("days", 1, "validity in days")
	fs.Parse(args)
	if *subject == "" {
		log.Fatal("issue: -subject is required")
	}
	prefix := *out
	if prefix == "" {
		prefix = *subject
	}

	ca, err := readCAFile(*caPath)
	if err != nil {
		log.Fatal(err)
	}
	// Full issuance: the device-side request and reconstruction run
	// here too, so the output contains the usable private key.
	req, sec, err := ecqv.NewRequest(ca.Curve, ecqv.NewID(*subject), nil)
	if err != nil {
		log.Fatal(err)
	}
	now := time.Now().Truncate(time.Second)
	resp, err := ca.Issue(req, ecqv.IssueParams{
		ValidFrom: now,
		ValidTo:   now.Add(time.Duration(*days) * 24 * time.Hour),
		KeyUsage:  ecqv.UsageKeyAgreement | ecqv.UsageSignature,
	})
	if err != nil {
		log.Fatal(err)
	}
	priv, pub, err := ecqv.ReconstructPrivateKey(sec, resp, ca.PublicKey())
	if err != nil {
		log.Fatal(err)
	}
	// Persist the advanced serial counter.
	if err := writeCAFile(*caPath, ca); err != nil {
		log.Fatal(err)
	}

	certPath := prefix + ".cert"
	keyPath := prefix + ".key"
	if err := os.WriteFile(certPath, []byte(hex.EncodeToString(resp.Cert.Encode())+"\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(keyPath, []byte(hex.EncodeToString(ca.Curve.ScalarToBytes(priv))+"\n"), 0o600); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("issued certificate for %q (serial %d)\n  cert: %s (%d bytes)\n  key:  %s\n  pub:  %s\n",
		*subject, resp.Cert.Serial, certPath, len(resp.Cert.Encode()), keyPath,
		hex.EncodeToString(ca.Curve.EncodeCompressed(pub)))
}

func readCert(path string) (*ecqv.Certificate, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	raw, err := hex.DecodeString(strings.TrimSpace(string(data)))
	if err != nil {
		return nil, fmt.Errorf("certificate hex: %w", err)
	}
	return ecqv.Decode(raw)
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	certPath := fs.String("cert", "", "certificate file (required)")
	fs.Parse(args)
	if *certPath == "" {
		log.Fatal("inspect: -cert is required")
	}
	cert, err := readCert(*certPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ECQV implicit certificate (%d bytes)\n", len(cert.Encode()))
	fmt.Printf("  curve:      %s\n", cert.Curve.Name)
	fmt.Printf("  version:    %d\n", cert.Version)
	fmt.Printf("  serial:     %d\n", cert.Serial)
	fmt.Printf("  subject:    %s\n", cert.SubjectID)
	fmt.Printf("  issuer:     %s\n", cert.IssuerID)
	fmt.Printf("  not before: %s\n", time.Unix(cert.ValidFrom, 0).UTC().Format(time.RFC3339))
	fmt.Printf("  not after:  %s\n", time.Unix(cert.ValidTo, 0).UTC().Format(time.RFC3339))
	fmt.Printf("  key usage:  %s\n", usageString(cert.KeyUsage))
	fmt.Printf("  recon pt:   %s\n", hex.EncodeToString(cert.Curve.EncodeCompressed(cert.PubRecon)))
	fmt.Printf("  valid now:  %v\n", cert.ValidAt(time.Now()))
}

func usageString(u ecqv.KeyUsage) string {
	var parts []string
	if u&ecqv.UsageKeyAgreement != 0 {
		parts = append(parts, "keyAgreement")
	}
	if u&ecqv.UsageSignature != 0 {
		parts = append(parts, "signature")
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, ", ")
}

func cmdPubkey(args []string) {
	fs := flag.NewFlagSet("pubkey", flag.ExitOnError)
	caPath := fs.String("ca", "ca.hex", "CA state file")
	certPath := fs.String("cert", "", "certificate file (required)")
	keyPath := fs.String("key", "", "optional private key file to verify against")
	fs.Parse(args)
	if *certPath == "" {
		log.Fatal("pubkey: -cert is required")
	}
	ca, err := readCAFile(*caPath)
	if err != nil {
		log.Fatal(err)
	}
	cert, err := readCert(*certPath)
	if err != nil {
		log.Fatal(err)
	}
	pub, err := ecqv.ExtractPublicKey(cert, ca.PublicKey())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("implicit public key: %s\n", hex.EncodeToString(cert.Curve.EncodeCompressed(pub)))

	if *keyPath != "" {
		data, err := os.ReadFile(*keyPath)
		if err != nil {
			log.Fatal(err)
		}
		raw, err := hex.DecodeString(strings.TrimSpace(string(data)))
		if err != nil {
			log.Fatal(err)
		}
		d, err := cert.Curve.ScalarFromBytes(raw)
		if err != nil {
			log.Fatal(err)
		}
		key, err := ecdsa.NewPrivateKey(cert.Curve, d)
		if err != nil {
			log.Fatal(err)
		}
		if key.Q.Equal(pub) {
			fmt.Println("private key matches the certificate ✓")
		} else {
			log.Fatal("private key does NOT match the certificate")
		}
	}
}
