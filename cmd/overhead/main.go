// Command overhead regenerates Table II of the paper: communication
// steps and transmission overhead of the KD protocols, from both the
// static wire specifications and live protocol transcripts (which must
// agree), plus the CAN-FD wire-time estimate for each protocol.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/canbus"
	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/report"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overhead: ")
	verbose := flag.Bool("v", false, "print the per-step field breakdown")
	flag.Parse()

	report.Section(os.Stdout, "Table II — communication steps and transmission overhead of the KD protocols")

	net, err := core.NewNetwork(ec.P256(), nil)
	if err != nil {
		log.Fatal(err)
	}
	a, b, err := net.Pair("alice", "bob")
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		Header: []string{"Protocol", "Steps", "Total bytes", "Live run", "CAN-FD wire time", "CAN-FD frames"},
	}
	for _, p := range protocolsTable2() {
		spec := p.Spec()
		res, err := p.Run(a, b)
		if err != nil {
			log.Fatalf("%s: %v", p.Name(), err)
		}
		var wire time.Duration
		frames := 0
		for _, step := range spec {
			wt, n, err := transport.WireCost(step.Size(), canbus.PrototypeRates)
			if err != nil {
				log.Fatal(err)
			}
			wire += wt
			frames += n
		}
		t.AddRow(
			p.Name(),
			fmt.Sprintf("%d", len(spec)),
			fmt.Sprintf("%d B", core.SpecTotal(spec)),
			fmt.Sprintf("%d B / %d steps", res.TotalBytes(), res.Steps()),
			fmt.Sprintf("%.3f ms", float64(wire.Microseconds())/1000),
			fmt.Sprintf("%d", frames),
		)
	}
	t.Render(os.Stdout)
	fmt.Println("\n  paper values: S-ECDSA 4(+1) steps / 427(+192) B; STS 4 / 491 B;")
	fmt.Println("  SCIANC 4 / 362 B; PORAMB 6 / 820 B — reproduced exactly.")

	if *verbose {
		for _, p := range protocolsTable2() {
			report.Section(os.Stdout, p.Name()+" — per-step fields")
			st := &report.Table{Header: []string{"Step", "Fields", "Bytes"}}
			for _, step := range p.Spec() {
				fields := ""
				for i, f := range step.Fields {
					if i > 0 {
						fields += ", "
					}
					fields += fmt.Sprintf("%s(%d)", f.Name, f.Size)
				}
				st.AddRow(step.Label, fields, fmt.Sprintf("%d", step.Size()))
			}
			st.Render(os.Stdout)
		}
	}
}

// protocolsTable2 lists the Table II rows (the optimized STS variants
// transmit identical data, so only base STS appears — "We did not
// include the optimized version of STS since it does not differ in
// terms of the transmitted data").
func protocolsTable2() []core.Protocol {
	return []core.Protocol{
		core.NewSECDSA(false),
		core.NewSECDSA(true),
		core.NewSTS(core.OptNone),
		core.NewSCIANC(),
		core.NewPORAMB(),
	}
}
