// Command kdbench regenerates the execution-time experiments of the
// paper: Table I (KD protocol times across four devices), Figure 3
// (per-operation STS times on the STM32F767) and Figure 4 (total KD
// processing-time comparison on the STM32F767).
//
// Usage:
//
//	kdbench            # everything
//	kdbench -table 1   # Table I only
//	kdbench -figure 3  # Figure 3 only
//	kdbench -figure 4  # Figure 4 only
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/hwmodel"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kdbench: ")
	table := flag.Int("table", 0, "regenerate only the given table (1)")
	figure := flag.Int("figure", 0, "regenerate only the given figure (3 or 4)")
	hsm := flag.Bool("hsm", false, "print the §VI future-work experiment (hardware accelerators)")
	sweep := flag.Bool("sweep", false, "print the curve security-level sweep")
	flag.Parse()

	model, err := hwmodel.New()
	if err != nil {
		log.Fatal(err)
	}

	all := *table == 0 && *figure == 0 && !*hsm && !*sweep
	if all || *table == 1 {
		printTable1(model)
	}
	if all || *figure == 3 {
		printFigure3(model)
	}
	if all || *figure == 4 {
		printFigure4(model)
	}
	if all || *hsm {
		printFutureWork(model)
	}
	if all || *sweep {
		printCurveSweep(model)
	}
}

func printFutureWork(model *hwmodel.Model) {
	report.Section(os.Stdout, "Future work (§VI) — KD times with hardware accelerators (ms)")
	table, err := model.FutureWorkTable()
	if err != nil {
		log.Fatal(err)
	}
	t := &report.Table{Header: []string{"Device", "S-ECDSA", "STS", "STS (opt. II)", "STS − S-ECDSA"}}
	order := []string{
		"ATmega2560", "ATmega2560+secure-element", "ATmega2560+on-die-pka",
		"S32K144", "S32K144+secure-element", "S32K144+on-die-pka",
		"STM32F767", "STM32F767+secure-element", "STM32F767+on-die-pka",
		"RaspberryPi4", "RaspberryPi4+on-die-pka",
	}
	for _, name := range order {
		row, ok := table[name]
		if !ok {
			continue
		}
		t.AddRow(name,
			fmt.Sprintf("%.1f", row["S-ECDSA"]),
			fmt.Sprintf("%.1f", row["STS"]),
			fmt.Sprintf("%.1f", row["STS (opt. II)"]),
			fmt.Sprintf("%.1f", row["STS"]-row["S-ECDSA"]),
		)
	}
	t.Render(os.Stdout)
	fmt.Println("\n  with EC offload the absolute DKD surcharge collapses, supporting the")
	fmt.Println("  paper's closing hypothesis about security modules and accelerators.")
}

func printCurveSweep(model *hwmodel.Model) {
	report.Section(os.Stdout, "Curve sweep — STS cost vs security level on the STM32F767")
	dev, err := model.Device("STM32F767")
	if err != nil {
		log.Fatal(err)
	}
	t := &report.Table{Header: []string{"Curve", "STS time (ms)", "STS opt II (ms)", "wire bytes"}}
	rows, err := model.CurveSweep(core.NewSTS(core.OptNone), dev)
	if err != nil {
		log.Fatal(err)
	}
	optRows, err := model.CurveSweep(core.NewSTS(core.OptII), dev)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range rows {
		t.AddRow(r.Curve,
			fmt.Sprintf("%.1f", r.TimeMS),
			fmt.Sprintf("%.1f", optRows[i].TimeMS),
			fmt.Sprintf("%d", r.WireBytes))
	}
	t.Render(os.Stdout)
}

func printTable1(model *hwmodel.Model) {
	report.Section(os.Stdout, "Table I — execution time of the KD protocols (ms), modelled vs paper")
	modelled, err := model.Table1()
	if err != nil {
		log.Fatal(err)
	}
	t := &report.Table{
		Header: []string{"Protocol / Device", "ATmega2560", "S32K144", "STM32F767", "RaspberryPi4"},
	}
	for _, p := range core.Protocols() {
		row := []string{p.Name()}
		for _, dev := range model.Devices() {
			got := modelled[p.Name()][dev.Name]
			paper := hwmodel.PaperTable1[p.Name()][dev.Name]
			row = append(row, fmt.Sprintf("%.1f (paper %.1f)", got, paper))
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
	fmt.Println("\n  note: S-ECDSA is the calibration row (matches by construction);")
	fmt.Println("  every other cell is a model prediction.")
}

func printFigure3(model *hwmodel.Model) {
	report.Section(os.Stdout, "Figure 3 — individual STS operation times on the STM32F767 (ms)")
	dev, err := model.Device("STM32F767")
	if err != nil {
		log.Fatal(err)
	}
	trace, err := model.ReferenceTrace("STS")
	if err != nil {
		log.Fatal(err)
	}
	phases := model.PhaseMS(trace, dev)

	labels := map[core.Phase]string{
		core.PhaseOp1: "Op1 (XG request)",
		core.PhaseOp2: "Op2 (pubkey+premaster)",
		core.PhaseOp3: "Op3 (sign+encrypt)",
		core.PhaseOp4: "Op4 (decrypt+verify)",
	}
	maxMS := 0.0
	for _, ph := range core.Phases() {
		if v := phases[core.RoleA][ph]; v > maxMS {
			maxMS = v
		}
	}
	for _, ph := range core.Phases() {
		report.Bar(os.Stdout, labels[ph], phases[core.RoleA][ph], maxMS, 40, "ms")
	}
	fmt.Println("\n  (initiator side; the responder is symmetric)")
}

func printFigure4(model *hwmodel.Model) {
	report.Section(os.Stdout, "Figure 4 — total KD protocol processing time on the STM32F767 (ms)")
	modelled, err := model.Table1()
	if err != nil {
		log.Fatal(err)
	}
	maxMS := 0.0
	for _, p := range core.Protocols() {
		if v := modelled[p.Name()]["STM32F767"]; v > maxMS {
			maxMS = v
		}
	}
	for _, p := range core.Protocols() {
		report.Bar(os.Stdout, p.Name(), modelled[p.Name()]["STM32F767"], maxMS, 40, "ms")
	}
}
