// Package repro's root bench harness: one benchmark per table and
// figure of the paper's evaluation, plus ablation benches for the
// design choices called out in DESIGN.md §5.
//
// The testing.B timings measure the real cryptography on the host;
// each experiment bench additionally reports the paper-comparable
// quantity (modelled device milliseconds, wire bytes, ...) as custom
// metrics, so `go test -bench=. -benchmem` regenerates every
// evaluation artifact in one run.
package repro

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/ecdsa"
	"repro/internal/ecqv"
	"repro/internal/fleet"
	"repro/internal/group"
	"repro/internal/hwmodel"
	"repro/internal/kdf"
	"repro/internal/prototype"
	"repro/internal/security"
	"repro/internal/session"
)

func timeUnix(sec int64) time.Time { return time.Unix(sec, 0) }

type benchRand struct{ r *rand.Rand }

func (d *benchRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

var (
	benchOnce    sync.Once
	benchModel   *hwmodel.Model
	benchAlice   *core.Party
	benchBob     *core.Party
	benchInitErr error
)

func benchSetup(b *testing.B) (*hwmodel.Model, *core.Party, *core.Party) {
	b.Helper()
	benchOnce.Do(func() {
		benchModel, benchInitErr = hwmodel.New()
		if benchInitErr != nil {
			return
		}
		var net *core.Network
		net, benchInitErr = core.NewNetwork(ec.P256(), &benchRand{r: rand.New(rand.NewSource(7))})
		if benchInitErr != nil {
			return
		}
		benchAlice, benchBob, benchInitErr = net.Pair("alice", "bob")
	})
	if benchInitErr != nil {
		b.Fatal(benchInitErr)
	}
	return benchModel, benchAlice, benchBob
}

// BenchmarkTable1_Protocols regenerates Table I: each sub-benchmark
// runs one KD protocol's full cryptography on the host and reports the
// modelled per-device times as metrics (ms on the paper's hardware).
func BenchmarkTable1_Protocols(b *testing.B) {
	model, alice, bob := benchSetup(b)
	for _, p := range core.Protocols() {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(alice, bob); err != nil {
					b.Fatal(err)
				}
			}
			for _, dev := range model.Devices() {
				ms, err := model.ProtocolMS(p, dev, dev)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(ms, dev.Name+"_ms")
			}
		})
	}
}

// BenchmarkFig3_STSOperations regenerates Figure 3: the four STS
// operations measured individually (host time) with the modelled
// STM32F767 milliseconds as a metric.
func BenchmarkFig3_STSOperations(b *testing.B) {
	model, alice, bob := benchSetup(b)
	dev, err := model.Device("STM32F767")
	if err != nil {
		b.Fatal(err)
	}
	trace, err := model.ReferenceTrace("STS")
	if err != nil {
		b.Fatal(err)
	}
	phaseMS := model.PhaseMS(trace, dev)

	curve := alice.Curve
	qBob, err := ecqv.ExtractPublicKey(bob.Cert, alice.CAPub)
	if err != nil {
		b.Fatal(err)
	}
	signKey, err := ecdsa.NewPrivateKey(curve, alice.Priv)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 128)
	sig, err := signKey.Sign(msg)
	if err != nil {
		b.Fatal(err)
	}
	rng := &benchRand{r: rand.New(rand.NewSource(11))}

	b.Run("Op1_request_XG", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k, err := curve.RandomScalar(rng)
			if err != nil {
				b.Fatal(err)
			}
			_ = curve.ScalarBaseMult(k)
		}
		b.ReportMetric(phaseMS[core.RoleA][core.PhaseOp1], "STM32F767_ms")
	})
	b.Run("Op2_pubkey_premaster", func(b *testing.B) {
		b.ReportAllocs()
		x, _ := curve.RandomScalar(rng)
		for i := 0; i < b.N; i++ {
			q, err := ecqv.ExtractPublicKey(bob.Cert, alice.CAPub)
			if err != nil {
				b.Fatal(err)
			}
			_ = curve.ScalarMult(q, x)
		}
		b.ReportMetric(phaseMS[core.RoleA][core.PhaseOp2], "STM32F767_ms")
	})
	b.Run("Op3_sign_encrypt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := signKey.Sign(msg); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(phaseMS[core.RoleA][core.PhaseOp3], "STM32F767_ms")
	})
	b.Run("Op4_decrypt_verify", func(b *testing.B) {
		b.ReportAllocs()
		pub := &ecdsa.PublicKey{Curve: curve, Q: signKey.Q}
		for i := 0; i < b.N; i++ {
			if !pub.Verify(msg, sig) {
				b.Fatal("verify failed")
			}
		}
		b.ReportMetric(phaseMS[core.RoleA][core.PhaseOp4], "STM32F767_ms")
	})
	_ = qBob
}

// BenchmarkFig4_TotalTimes regenerates Figure 4 (total processing time
// per protocol on the STM32F767) as metrics on a single host run each.
func BenchmarkFig4_TotalTimes(b *testing.B) {
	model, alice, bob := benchSetup(b)
	dev, err := model.Device("STM32F767")
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range core.Protocols() {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(alice, bob); err != nil {
					b.Fatal(err)
				}
			}
			ms, err := model.ProtocolMS(p, dev, dev)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(ms, "STM32F767_ms")
		})
	}
}

// BenchmarkTable2_Overhead regenerates Table II: protocol handshakes
// with the transmitted byte and step counts as metrics.
func BenchmarkTable2_Overhead(b *testing.B) {
	_, alice, bob := benchSetup(b)
	for _, p := range core.Protocols() {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = p.Run(alice, bob)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.TotalBytes()), "wire_bytes")
			b.ReportMetric(float64(res.Steps()), "steps")
		})
	}
}

// BenchmarkFig7_Prototype regenerates Figure 7: the full BMS ↔ EVCC
// prototype session (real crypto + simulated CAN-FD) for STS and
// S-ECDSA, reporting the modelled totals.
func BenchmarkFig7_Prototype(b *testing.B) {
	model, _, _ := benchSetup(b)
	for _, p := range []core.Protocol{core.NewSTS(core.OptNone), core.NewSECDSA(false)} {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var tl *prototype.Timeline
			var err error
			for i := 0; i < b.N; i++ {
				tl, err = prototype.Run(p, model, "S32K144")
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(tl.Total.Seconds()*1000, "S32K144_total_ms")
			b.ReportMetric(float64(tl.Wire.Microseconds())/1000, "wire_ms")
		})
	}
}

// BenchmarkTable3_SecurityAnalysis runs the full attack suite of the
// security evaluation (Table III) once per iteration.
func BenchmarkTable3_SecurityAnalysis(b *testing.B) {
	an := security.NewAnalyzer(&benchRand{r: rand.New(rand.NewSource(13))})
	for i := 0; i < b.N; i++ {
		if _, err := an.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizationAblation quantifies equations (5), (7), (8):
// the modelled saving of each pipelining level (DESIGN.md ablation 3).
func BenchmarkOptimizationAblation(b *testing.B) {
	model, _, _ := benchSetup(b)
	dev, err := model.Device("STM32F767")
	if err != nil {
		b.Fatal(err)
	}
	trace, err := model.ReferenceTrace("STS")
	if err != nil {
		b.Fatal(err)
	}
	var seq, opt1, opt2 float64
	for i := 0; i < b.N; i++ {
		seq = model.SequentialMS(trace, dev, dev)
		opt1 = model.OptimizedMS(trace, dev, dev, hwmodel.OverlapSet(core.OptI))
		opt2 = model.OptimizedMS(trace, dev, dev, hwmodel.OverlapSet(core.OptII))
	}
	b.ReportMetric(seq, "sequential_ms")
	b.ReportMetric(seq-opt1, "optI_saving_ms")
	b.ReportMetric(seq-opt2, "optII_saving_ms")
}

// BenchmarkScalarMultAblation compares the wNAF scalar multiplication
// against the schoolbook ladder (DESIGN.md ablation 2).
func BenchmarkScalarMultAblation(b *testing.B) {
	curve := ec.P256()
	rng := &benchRand{r: rand.New(rand.NewSource(17))}
	k, err := curve.RandomScalar(rng)
	if err != nil {
		b.Fatal(err)
	}
	p := curve.Generator()

	b.Run("wNAF", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = curve.ScalarMult(p, k)
		}
	})
	b.Run("double-and-add", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = curve.ScalarMultNaive(p, k)
		}
	})
	b.Run("base-table", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = curve.ScalarBaseMult(k)
		}
	})
}

// BenchmarkECQVLifecycle prices the certificate-derivation stage:
// request, issuance, reconstruction, extraction.
func BenchmarkECQVLifecycle(b *testing.B) {
	rng := &benchRand{r: rand.New(rand.NewSource(19))}
	curve := ec.P256()
	ca, err := ecqv.NewCA(curve, ecqv.NewID("ca"), rng)
	if err != nil {
		b.Fatal(err)
	}
	params := ecqv.IssueParams{
		ValidFrom: timeUnix(1700000000),
		ValidTo:   timeUnix(1700086400),
		KeyUsage:  ecqv.UsageKeyAgreement | ecqv.UsageSignature,
	}

	b.Run("issue", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req, _, err := ecqv.NewRequest(curve, ecqv.NewID("dev"), rng)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ca.Issue(req, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reconstruct", func(b *testing.B) {
		b.ReportAllocs()
		req, sec, _ := ecqv.NewRequest(curve, ecqv.NewID("dev"), rng)
		resp, err := ca.Issue(req, params)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ecqv.ReconstructPrivateKey(sec, resp, ca.PublicKey()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("extract-pubkey", func(b *testing.B) {
		b.ReportAllocs()
		req, _, _ := ecqv.NewRequest(curve, ecqv.NewID("dev"), rng)
		resp, err := ca.Issue(req, params)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ecqv.ExtractPublicKey(resp.Cert, ca.PublicKey()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLiveHandshake runs the message-driven STS engine end to
// end (state machines + wire codecs, no network).
func BenchmarkLiveHandshake(b *testing.B) {
	_, alice, bob := benchSetup(b)
	for _, opt := range []core.STSOptimization{core.OptNone, core.OptII} {
		b.Run(opt.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				init, err := core.NewInitiator(alice, opt)
				if err != nil {
					b.Fatal(err)
				}
				resp, err := core.NewResponder(bob, opt)
				if err != nil {
					b.Fatal(err)
				}
				msg, err := init.Start()
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 8; j++ {
					reply, _, err := resp.Handle(msg)
					if err != nil {
						b.Fatal(err)
					}
					if reply == nil {
						break
					}
					next, done, err := init.Handle(reply)
					if err != nil {
						b.Fatal(err)
					}
					if done {
						break
					}
					msg = next
				}
				if _, err := init.SessionKey(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSessionRecords prices the post-KD record layer.
func BenchmarkSessionRecords(b *testing.B) {
	keyBlock := make([]byte, 48)
	for i := range keyBlock {
		keyBlock[i] = byte(i)
	}
	for _, size := range []int{16, 64, 512} {
		b.Run(fmt.Sprintf("seal-open-%dB", size), func(b *testing.B) {
			b.ReportAllocs()
			a, peer, err := session.NewPair(keyBlock, session.Policy{})
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, err := a.Seal(payload)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := peer.Open(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupRekey prices a full group key rotation (pairwise STS
// handshake + distribution) for growing group sizes.
func BenchmarkGroupRekey(b *testing.B) {
	net, err := core.NewNetwork(ec.P256(), &benchRand{r: rand.New(rand.NewSource(31))})
	if err != nil {
		b.Fatal(err)
	}
	leaderParty, err := net.Provision("gw")
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{2, 8} {
		b.Run(fmt.Sprintf("members-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			leader, err := group.NewLeader(leaderParty, core.OptII)
			if err != nil {
				b.Fatal(err)
			}
			parties := make([]*core.Party, size)
			for i := range parties {
				parties[i], err = net.Provision(fmt.Sprintf("m%d-%d", size, i))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := leader.Add(parties[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Rotate by removing and re-admitting one member:
				// one pairwise handshake + full redistribution.
				if _, err := leader.Remove(parties[0].ID); err != nil {
					b.Fatal(err)
				}
				if _, err := leader.Add(parties[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstablishAll prices bringing a whole fleet online through
// the sharded Manager's worker pool: 16 concurrent STS handshakes per
// iteration, swept over worker counts. Throughput (handshakes/s) should
// scale with workers up to GOMAXPROCS — the lock-striping claim.
func BenchmarkEstablishAll(b *testing.B) {
	const fleetSize = 16
	net, err := core.NewNetwork(ec.P256(), nil)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, 1+fleetSize)
	names[0] = "gateway"
	for i := 1; i < len(names); i++ {
		names[i] = fmt.Sprintf("fleet-%02d", i)
	}
	parties, err := net.ProvisionBatch(names, 0)
	if err != nil {
		b.Fatal(err)
	}
	gw, peers := parties[0], parties[1:]

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			m, err := fleet.NewManager(gw, core.OptNone, session.DefaultPolicy)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := errors.Join(m.EstablishAll(peers, workers)...); err != nil {
					b.Fatalf("failures: %v", err)
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(fleetSize*b.N)/secs, "handshakes/s")
			}
		})
	}
}

// BenchmarkEnrollBatch prices batch certificate issuance: 32 devices
// enrolled per iteration (request, ECQV issuance, reconstruction)
// through the provisioning worker pool, swept over worker counts.
func BenchmarkEnrollBatch(b *testing.B) {
	const batch = 32
	net, err := core.NewNetwork(ec.P256(), nil)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, batch)
	for i := range names {
		names[i] = fmt.Sprintf("enroll-%02d", i)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := net.ProvisionBatch(names, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(batch*b.N)/secs, "enrollments/s")
			}
		})
	}
}

// BenchmarkPrimitives prices the symmetric substrate.
func BenchmarkPrimitives(b *testing.B) {
	b.Run("HKDF-SessionKeys", func(b *testing.B) {
		b.ReportAllocs()
		pm := make([]byte, 32)
		for i := 0; i < b.N; i++ {
			if _, _, err := kdf.SessionKeys(pm, []byte("salt")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ECDSA-sign", func(b *testing.B) {
		b.ReportAllocs()
		rng := &benchRand{r: rand.New(rand.NewSource(23))}
		key, err := ecdsa.GenerateKey(ec.P256(), rng)
		if err != nil {
			b.Fatal(err)
		}
		msg := make([]byte, 128)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := key.Sign(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ECDSA-verify", func(b *testing.B) {
		b.ReportAllocs()
		rng := &benchRand{r: rand.New(rand.NewSource(29))}
		key, err := ecdsa.GenerateKey(ec.P256(), rng)
		if err != nil {
			b.Fatal(err)
		}
		msg := make([]byte, 128)
		sig, _ := key.Sign(msg)
		pub := key.Public()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !pub.Verify(msg, sig) {
				b.Fatal("verify failed")
			}
		}
	})
}
